package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/te"
)

// JSON scenario files let operators describe a topology, a traffic
// matrix and a failure timeline declaratively and replay them through
// the controller (cmd/rwc-scenario). Node references are by name.
//
//	{
//	  "nodes": ["SEA", "DEN", "NYC"],
//	  "links": [
//	    {"from": "SEA", "to": "DEN", "weight": 1},
//	    {"from": "DEN", "to": "NYC", "weight": 1}
//	  ],
//	  "rounds": 6,
//	  "baseline_snr_db": 16,
//	  "demands": [{"from": "SEA", "to": "NYC", "gbps": 120}],
//	  "events": [
//	    {"round": 2, "from": "SEA", "to": "DEN", "snr_db": 4.2},
//	    {"round": 4, "from": "SEA", "to": "DEN", "snr_db": 16}
//	  ]
//	}
//
// Links are directed; list both directions for bidirectional
// adjacencies (or set "bidir": true).
type jsonScenario struct {
	Nodes []string `json:"nodes"`
	Links []struct {
		From   string  `json:"from"`
		To     string  `json:"to"`
		Weight float64 `json:"weight"`
		Bidir  bool    `json:"bidir"`
	} `json:"links"`
	Rounds      int     `json:"rounds"`
	BaselineSNR float64 `json:"baseline_snr_db"`
	Demands     []struct {
		From     string  `json:"from"`
		To       string  `json:"to"`
		Gbps     float64 `json:"gbps"`
		Priority int     `json:"priority"`
	} `json:"demands"`
	Events []struct {
		Round int     `json:"round"`
		From  string  `json:"from"`
		To    string  `json:"to"`
		SNRdB float64 `json:"snr_db"`
	} `json:"events"`
}

// LoadJSON parses a JSON scenario into a topology and a Script.
func LoadJSON(r io.Reader) (*graph.Graph, Script, error) {
	var js jsonScenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, Script{}, fmt.Errorf("scenario: parsing JSON: %w", err)
	}
	if len(js.Nodes) == 0 {
		return nil, Script{}, fmt.Errorf("scenario: no nodes")
	}
	g := graph.New()
	byName := make(map[string]graph.NodeID, len(js.Nodes))
	for _, n := range js.Nodes {
		if _, dup := byName[n]; dup {
			return nil, Script{}, fmt.Errorf("scenario: duplicate node %q", n)
		}
		byName[n] = g.AddNode(n)
	}
	lookup := func(name string) (graph.NodeID, error) {
		id, ok := byName[name]
		if !ok {
			return graph.NoNode, fmt.Errorf("scenario: unknown node %q", name)
		}
		return id, nil
	}
	// edgeOf maps a directed pair to its edge for event resolution.
	edgeOf := map[[2]graph.NodeID]graph.EdgeID{}
	addLink := func(from, to string, w float64) error {
		u, err := lookup(from)
		if err != nil {
			return err
		}
		v, err := lookup(to)
		if err != nil {
			return err
		}
		if w <= 0 {
			w = 1
		}
		if _, dup := edgeOf[[2]graph.NodeID{u, v}]; dup {
			return fmt.Errorf("scenario: duplicate link %s->%s", from, to)
		}
		edgeOf[[2]graph.NodeID{u, v}] = g.AddEdge(graph.Edge{From: u, To: v, Weight: w})
		return nil
	}
	for _, l := range js.Links {
		if err := addLink(l.From, l.To, l.Weight); err != nil {
			return nil, Script{}, err
		}
		if l.Bidir {
			if err := addLink(l.To, l.From, l.Weight); err != nil {
				return nil, Script{}, err
			}
		}
	}

	s := Script{Rounds: js.Rounds, BaselinedB: js.BaselineSNR}
	for _, d := range js.Demands {
		u, err := lookup(d.From)
		if err != nil {
			return nil, Script{}, err
		}
		v, err := lookup(d.To)
		if err != nil {
			return nil, Script{}, err
		}
		s.Demands = append(s.Demands, te.Demand{Src: u, Dst: v, Volume: d.Gbps, Priority: d.Priority})
	}
	for _, ev := range js.Events {
		u, err := lookup(ev.From)
		if err != nil {
			return nil, Script{}, err
		}
		v, err := lookup(ev.To)
		if err != nil {
			return nil, Script{}, err
		}
		id, ok := edgeOf[[2]graph.NodeID{u, v}]
		if !ok {
			return nil, Script{}, fmt.Errorf("scenario: event references missing link %s->%s", ev.From, ev.To)
		}
		s.Events = append(s.Events, Event{Round: ev.Round, Link: id, SNRdB: ev.SNRdB})
	}
	if err := s.Validate(g); err != nil {
		return nil, Script{}, err
	}
	return g, s, nil
}
