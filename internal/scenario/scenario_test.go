package scenario

import (
	"testing"

	"repro/internal/controller"
	"repro/internal/graph"
	"repro/internal/snr"
	"repro/internal/te"
)

// ring builds a bidirectional 4-node ring.
func ring() (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	n := make([]graph.NodeID, 4)
	for i := range n {
		n[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := range n {
		j := (i + 1) % 4
		g.AddEdge(graph.Edge{From: n[i], To: n[j], Weight: 1})
		g.AddEdge(graph.Edge{From: n[j], To: n[i], Weight: 1})
	}
	return g, n
}

func TestScriptValidate(t *testing.T) {
	g, n := ring()
	good := Script{
		Rounds:     5,
		BaselinedB: 15,
		Events:     []Event{{Round: 2, Link: 0, SNRdB: 4}},
		Demands:    []te.Demand{{Src: n[0], Dst: n[2], Volume: 50}},
	}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Rounds = 0
	if err := bad.Validate(g); err == nil {
		t.Fatal("0 rounds accepted")
	}
	bad = good
	bad.Events = []Event{{Round: 99, Link: 0}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("out-of-range round accepted")
	}
	bad = good
	bad.Events = []Event{{Round: 1, Link: 99}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("unknown edge accepted")
	}
	bad = good
	bad.Demands = []te.Demand{{Src: n[0], Dst: n[0], Volume: 1}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("invalid demand accepted")
	}
}

func TestRunHealthyScriptShipsEverything(t *testing.T) {
	g, n := ring()
	rep, err := Run(g, 100, controller.Config{}, Script{
		Rounds:     4,
		BaselinedB: 15,
		Demands:    []te.Demand{{Src: n[0], Dst: n[2], Volume: 120}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanSatisfied < 0.99 {
		t.Fatalf("mean satisfied = %v", rep.MeanSatisfied)
	}
	if rep.DarkLinkRounds != 0 || rep.DegradedLinkRounds != 0 {
		t.Fatalf("healthy run degraded: %+v", rep)
	}
}

func TestRunDegradationProducesFlap(t *testing.T) {
	g, n := ring()
	rep, err := Run(g, 100, controller.Config{}, Script{
		Rounds:     6,
		BaselinedB: 15,
		Events: []Event{
			{Round: 2, Link: 0, SNRdB: 4.2}, // degrade to 50G territory
			{Round: 4, Link: 0, SNRdB: 15},  // recover
		},
		Demands: []te.Demand{{Src: n[0], Dst: n[2], Volume: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradedLinkRounds == 0 {
		t.Fatal("no degraded rounds recorded")
	}
	if rep.DarkLinkRounds != 0 {
		t.Fatal("flap went dark under dynamic operation")
	}
	// The flap (down) and restore (up) both count as changes.
	if rep.TotalChanges < 2 {
		t.Fatalf("changes = %d", rep.TotalChanges)
	}
	// Last round: recovered, nothing degraded.
	last := rep.Rounds[len(rep.Rounds)-1]
	if last.DegradedLinks != 0 {
		t.Fatalf("link did not recover: %+v", last)
	}
}

func TestRunCutGoesDark(t *testing.T) {
	g, n := ring()
	rep, err := Run(g, 100, controller.Config{}, Script{
		Rounds:     4,
		BaselinedB: 15,
		Events:     []Event{{Round: 1, Link: 0, SNRdB: snr.LossOfLightdB}},
		Demands:    []te.Demand{{Src: n[0], Dst: n[2], Volume: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DarkLinkRounds == 0 {
		t.Fatal("fiber cut did not darken the link")
	}
	// Ring redundancy: traffic survives via the other direction.
	if rep.MeanSatisfied < 0.99 {
		t.Fatalf("ring did not protect: %v", rep.MeanSatisfied)
	}
}

func TestCompareDynamicBinaryAvailability(t *testing.T) {
	// A degradation that dynamic turns into a 50G flap while binary
	// goes dark. Use a line topology so the darkness hurts throughput.
	g := graph.New()
	s, d := g.AddNode("s"), g.AddNode("d")
	g.AddEdge(graph.Edge{From: s, To: d, Weight: 1})
	script := Script{
		Rounds:     6,
		BaselinedB: 15,
		Events: []Event{
			{Round: 2, Link: 0, SNRdB: 4.2},
			{Round: 5, Link: 0, SNRdB: 15},
		},
		Demands: []te.Demand{{Src: s, Dst: d, Volume: 100}},
	}
	dynamic, binary, err := CompareDynamicBinary(g, 100, controller.Config{}, script)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.DarkLinkRounds != 0 {
		t.Fatalf("dynamic went dark: %+v", dynamic)
	}
	if binary.DarkLinkRounds == 0 {
		t.Fatalf("binary did not go dark: %+v", binary)
	}
	if dynamic.MeanSatisfied <= binary.MeanSatisfied {
		t.Fatalf("dynamic satisfied %v <= binary %v",
			dynamic.MeanSatisfied, binary.MeanSatisfied)
	}
	// During the degraded rounds dynamic ships 50, binary ships 0.
	if dynamic.Rounds[3].Shipped < 49 {
		t.Fatalf("dynamic degraded round shipped %v", dynamic.Rounds[3].Shipped)
	}
	if binary.Rounds[3].Shipped > 1 {
		t.Fatalf("binary degraded round shipped %v", binary.Rounds[3].Shipped)
	}
}

func TestBinaryLadderSingleRung(t *testing.T) {
	l, err := BinaryLadder(100, 6.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Modes()) != 1 {
		t.Fatal("binary ladder has extra rungs")
	}
	if _, ok := l.FeasibleCapacity(6.4); ok {
		t.Fatal("binary ladder feasible below threshold")
	}
	if m, ok := l.FeasibleCapacity(20); !ok || m.Capacity != 100 {
		t.Fatal("binary ladder wrong above threshold")
	}
}

func TestRunDoesNotMutateInputGraph(t *testing.T) {
	g, n := ring()
	before := g.Edges()
	if _, err := Run(g, 100, controller.Config{}, Script{
		Rounds: 2, BaselinedB: 15,
		Demands: []te.Demand{{Src: n[0], Dst: n[1], Volume: 10}},
	}); err != nil {
		t.Fatal(err)
	}
	after := g.Edges()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("edge %d mutated", i)
		}
	}
}
