// Package scenario drives the control loop through scripted SNR
// timelines — degradations, cuts, recoveries at specific rounds — and
// reports availability, throughput and churn. It is the chaos-testing
// harness for the controller and the generator of the dynamic-vs-binary
// comparisons in the availability analysis: the same script can be run
// with the full modulation ladder (capacity flaps) and with a
// single-rung ladder (today's binary up/down rule).
package scenario

import (
	"fmt"

	"repro/internal/controller"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/te"
)

// Event sets a link's SNR from a given round onward.
type Event struct {
	// Round is when the event takes effect (0-based).
	Round int
	// Link is the affected edge.
	Link graph.EdgeID
	// SNRdB is the new SNR. Use snr.LossOfLightdB (0) for a cut.
	SNRdB float64
}

// Script is a deterministic scenario.
type Script struct {
	// Rounds is the number of control-loop iterations.
	Rounds int
	// BaselinedB is the SNR of every link before any event touches it.
	BaselinedB float64
	// Events are applied in order; later events override earlier ones
	// for the same link.
	Events []Event
	// Demands is the (fixed) traffic matrix.
	Demands []te.Demand
}

// Validate checks the script against a topology.
func (s Script) Validate(g *graph.Graph) error {
	if s.Rounds <= 0 {
		return fmt.Errorf("scenario: need >= 1 round")
	}
	for i, ev := range s.Events {
		if ev.Round < 0 || ev.Round >= s.Rounds {
			return fmt.Errorf("scenario: event %d at round %d outside [0,%d)", i, ev.Round, s.Rounds)
		}
		if !g.HasEdge(ev.Link) {
			return fmt.Errorf("scenario: event %d references unknown edge %d", i, int(ev.Link))
		}
	}
	for i, d := range s.Demands {
		if err := d.Validate(g); err != nil {
			return fmt.Errorf("scenario: demand %d: %w", i, err)
		}
	}
	return nil
}

// RoundReport records one round.
type RoundReport struct {
	Round   int
	Offered float64
	Shipped float64
	Orders  []controller.Order
	// DarkLinks counts links at zero capacity; DegradedLinks counts
	// links below their nominal capacity but still up.
	DarkLinks, DegradedLinks int
}

// Report is a full scenario run.
type Report struct {
	Rounds []RoundReport
	// TotalChanges counts modulation changes across the run.
	TotalChanges int
	// MeanSatisfied averages shipped/offered.
	MeanSatisfied float64
	// DarkLinkRounds and DegradedLinkRounds sum the per-round counts —
	// the availability ledger.
	DarkLinkRounds, DegradedLinkRounds int
}

// BinaryLadder returns a single-rung ladder: today's fixed capacity
// with the binary up/down rule — the baseline the paper argues against.
func BinaryLadder(capacity modulation.Gbps, thresholddB float64) (*modulation.Ladder, error) {
	return modulation.NewLadder([]modulation.Mode{
		{Capacity: capacity, Format: modulation.FormatQPSK, MinSNRdB: thresholddB},
	})
}

// Run executes the script against a fresh controller on g. The
// controller config's Ladder selects dynamic (full ladder) vs binary
// (single rung) operation; initial is the starting capacity.
func Run(g *graph.Graph, initial modulation.Gbps, cfg controller.Config, s Script) (*Report, error) {
	return RunWith(g, initial, cfg, nil, s)
}

// RunWith is Run with a tuning hook applied to the fresh controller
// before the first round — the place to enable flap damping or a
// change budget.
func RunWith(g *graph.Graph, initial modulation.Gbps, cfg controller.Config, tune func(*controller.Controller), s Script) (*Report, error) {
	if err := s.Validate(g); err != nil {
		return nil, err
	}
	work := g.Clone()
	ctrl, err := controller.New(work, initial, cfg)
	if err != nil {
		return nil, err
	}
	if tune != nil {
		tune(ctrl)
	}

	// Current SNR per link.
	snrNow := make(map[graph.EdgeID]float64, work.NumEdges())
	for _, e := range work.Edges() {
		snrNow[e.ID] = s.BaselinedB
	}

	var offered float64
	for _, d := range s.Demands {
		offered += d.Volume
	}

	rep := &Report{}
	var satSum float64
	for round := 0; round < s.Rounds; round++ {
		for _, ev := range s.Events {
			if ev.Round == round {
				snrNow[ev.Link] = ev.SNRdB
			}
		}
		for _, e := range work.Edges() {
			if _, err := ctrl.ObserveSNR(e.ID, snrNow[e.ID]); err != nil {
				return nil, err
			}
		}
		plan, err := ctrl.Step(s.Demands)
		if err != nil {
			return nil, err
		}
		rr := RoundReport{
			Round:   round,
			Offered: offered,
			Shipped: plan.Decision.Value,
			Orders:  plan.Orders,
		}
		for _, e := range work.Edges() {
			cap, err := ctrl.Configured(e.ID)
			if err != nil {
				return nil, err
			}
			switch {
			case cap == 0:
				rr.DarkLinks++
			case cap < initial:
				rr.DegradedLinks++
			}
		}
		rep.Rounds = append(rep.Rounds, rr)
		rep.TotalChanges += len(plan.Orders)
		rep.DarkLinkRounds += rr.DarkLinks
		rep.DegradedLinkRounds += rr.DegradedLinks
		if offered > 0 {
			satSum += rr.Shipped / offered
		} else {
			satSum++
		}
	}
	rep.MeanSatisfied = satSum / float64(s.Rounds)
	return rep, nil
}

// CompareDynamicBinary runs the same script twice: once with the full
// modulation ladder (capacity flaps) and once with a binary single-rung
// ladder (link down below threshold). The deltas quantify §2.2's
// availability argument on an arbitrary scenario.
func CompareDynamicBinary(g *graph.Graph, initial modulation.Gbps, cfg controller.Config, s Script) (dynamic, binary *Report, err error) {
	dynCfg := cfg
	if dynCfg.Ladder == nil {
		dynCfg.Ladder = modulation.Default()
	}
	dynamic, err = Run(g, initial, dynCfg, s)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: dynamic run: %w", err)
	}
	th, err := dynCfg.Ladder.ThresholdFor(initial)
	if err != nil {
		return nil, nil, err
	}
	binLadder, err := BinaryLadder(initial, th)
	if err != nil {
		return nil, nil, err
	}
	binCfg := cfg
	binCfg.Ladder = binLadder
	binary, err = Run(g, initial, binCfg, s)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: binary run: %w", err)
	}
	return dynamic, binary, nil
}
