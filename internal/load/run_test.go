package load

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/obs/sli"
)

// TestRunAgainstServiceMode drives the real serve handler — SLI
// layer, /demandz admission, /traces SSE — with a short burst and
// checks the report's shape end to end.
func TestRunAgainstServiceMode(t *testing.T) {
	o := obs.New("rwc-wansim")
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: 7})
	s := serve.New(serve.Options{
		Obs: o, SLI: layer, Tool: "rwc-wansimd", Seed: 7,
		Admit: func(volumes []float64) serve.AdmitResponse {
			return serve.AdmitAgainst(3, "dynamic", 800, 500, volumes)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed some service history so the deltas have an edge to measure.
	layer.RoundComplete("dynamic", time.Millisecond, 5)
	layer.Tick(time.Second)

	// Emit trace events during the run so SSE subscribers see data.
	stop := make(chan struct{})
	emitDone := make(chan struct{})
	go func() {
		defer close(emitDone)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				o.Event("round.complete", obs.A("n", 1))
			}
		}
	}()

	rep, err := Run(Options{
		BaseURL:        ts.URL,
		Duration:       400 * time.Millisecond,
		ScrapeInterval: 20 * time.Millisecond,
		QueryInterval:  20 * time.Millisecond,
		BatchInterval:  20 * time.Millisecond,
		BatchSize:      4,
		SSEClients:     2,
		Nodes:          8,
		Seed:           7,
		Client:         ts.Client(),
	})
	close(stop)
	<-emitDone
	if err != nil {
		t.Fatal(err)
	}

	if rep.Kind != ReportKind || rep.Target != ts.URL || rep.Seed != 7 {
		t.Fatalf("report header = %+v", rep)
	}
	if rep.Scrape.Requests == 0 || rep.Scrape.P99Ns == 0 {
		t.Fatalf("no scrapes recorded: %+v", rep.Scrape)
	}
	if rep.Scrape.Errors != 0 || rep.Query.Errors != 0 {
		t.Fatalf("client errors against a healthy server: scrape=%+v query=%+v", rep.Scrape, rep.Query)
	}
	if rep.Demand.Batches == 0 || rep.Demand.Demands != rep.Demand.Batches*4 {
		t.Fatalf("demand stream = %+v", rep.Demand)
	}
	// Every batch got a real admission answer against 300 headroom.
	if rep.Demand.Admitted+rep.Demand.Rejected != rep.Demand.Demands || rep.Demand.Errors != 0 {
		t.Fatalf("admission bookkeeping = %+v", rep.Demand)
	}
	if rep.Demand.OfferedGbps <= 0 || rep.Demand.AdmittedGbps > rep.Demand.OfferedGbps {
		t.Fatalf("admitted volume exceeds offered: %+v", rep.Demand)
	}
	if rep.SSE.Subscribers != 2 || rep.SSE.Events == 0 {
		t.Fatalf("SSE subscribers saw nothing: %+v", rep.SSE)
	}
	// Service deltas come from the SLI plane: the scrape client's own
	// scrapes are part of the measured delta.
	if rep.Service.ScrapesDelta <= 0 {
		t.Fatalf("scrapes delta = %v, want > 0", rep.Service.ScrapesDelta)
	}
	if rep.Service.Generation != 1 || rep.Service.ReloadFailures != 0 {
		t.Fatalf("service config state = %+v", rep.Service)
	}
	// The demand probes landed on the daemon-side SLI counters too.
	if got := layer.Registry().Totals()[sli.MetricDemandBatches]; got != float64(rep.Demand.Batches) {
		t.Fatalf("SLI demand batches = %v, report says %d", got, rep.Demand.Batches)
	}
}

func TestRunFailsFastWhenUnreachable(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	if _, err := Run(Options{BaseURL: url, Duration: 50 * time.Millisecond}); err == nil {
		t.Fatal("Run succeeded against a dead daemon")
	}
}
