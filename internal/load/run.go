package load

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sli"
	"repro/internal/rng"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the daemon's operations plane, e.g. "http://127.0.0.1:7719".
	BaseURL string
	// Duration is how long to offer load (default 3s).
	Duration time.Duration
	// ScrapeInterval paces the /metrics client (default 100ms).
	ScrapeInterval time.Duration
	// QueryInterval paces the /queryz client (default 250ms).
	QueryInterval time.Duration
	// BatchInterval paces /demandz batches (default 50ms).
	BatchInterval time.Duration
	// BatchSize is demands per batch (default 16).
	BatchSize int
	// SSEClients is how many concurrent /traces subscribers to run
	// (default 2).
	SSEClients int
	// Nodes sizes the gravity model's node id space (default 12).
	Nodes int
	// Seed makes the offered load reproducible.
	Seed uint64
	// Client overrides the HTTP client (tests inject httptest's).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 100 * time.Millisecond
	}
	if o.QueryInterval <= 0 {
		o.QueryInterval = 250 * time.Millisecond
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = 50 * time.Millisecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.SSEClients < 0 {
		o.SSEClients = 0
	}
	if o.Nodes <= 0 {
		o.Nodes = 12
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return o
}

// gravity precomputes node masses for the demand stream: the same
// heavy-tailed gravity shape the simulation's demand matrix uses, so
// offered probe volumes look like real traffic. Deterministic in Seed.
type gravity struct {
	src  *rng.Source
	mass []float64
	sum  float64
}

func newGravity(seed uint64, nodes int) *gravity {
	g := &gravity{src: rng.New(seed ^ 0x10ad), mass: make([]float64, nodes)}
	for i := range g.mass {
		g.mass[i] = g.src.Pareto(1, 1.2)
		g.sum += g.mass[i]
	}
	return g
}

// batch emits one demand batch as the /demandz JSON body.
func (g *gravity) batch(n int) string {
	var b strings.Builder
	b.WriteString(`{"demands":[`)
	for i := 0; i < n; i++ {
		src := g.src.Intn(len(g.mass))
		dst := g.src.Intn(len(g.mass))
		if dst == src {
			dst = (dst + 1) % len(g.mass)
		}
		gbps := 400 * g.mass[src] * g.mass[dst] / (g.sum * g.sum) * float64(len(g.mass))
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"src":%d,"dst":%d,"gbps":%.3f}`, src, dst, gbps)
	}
	b.WriteString(`]}`)
	return b.String()
}

// jsonDecode decodes one JSON body.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// sample is one timed request outcome.
type sample struct {
	ns  int64
	err bool
}

// timedGet performs one GET, returning latency and the body.
func timedGet(c *http.Client, url string) (sample, []byte) {
	t0 := time.Now()
	resp, err := c.Get(url)
	if err != nil {
		return sample{time.Since(t0).Nanoseconds(), true}, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := sample{ns: time.Since(t0).Nanoseconds(), err: rerr != nil || resp.StatusCode != http.StatusOK}
	return s, body
}

// sumPrefix sums every series whose key starts with name (summing a
// labeled family) in a PromTotals map.
func sumPrefix(totals map[string]float64, name string) float64 {
	var sum float64
	for k, v := range totals {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// Run offers the configured load for Duration and reports what the
// service sustained. The only hard error is failing to scrape the
// daemon at all; individual request failures are counted, not fatal.
func Run(opts Options) (Report, error) {
	opts = opts.withDefaults()
	base := strings.TrimSuffix(opts.BaseURL, "/")
	rep := Report{
		Kind:   ReportKind,
		Tool:   "rwc-loadgen",
		Target: base,
		Seed:   opts.Seed,
	}

	// Opening scrape: the "before" edge of every service delta, and a
	// hard failure if the daemon isn't reachable.
	s0, body := timedGet(opts.Client, base+"/metrics")
	if s0.err {
		return rep, fmt.Errorf("initial scrape of %s/metrics failed", base)
	}
	before, err := obs.PromTotals(strings.NewReader(string(body)))
	if err != nil {
		return rep, fmt.Errorf("initial scrape parse: %v", err)
	}

	var (
		mu           sync.Mutex
		scrapeNs     []int64
		scrapeErrs   int
		queryNs      []int64
		queryErrs    int
		sseEvents    int
		sseComments  int
		sseBytes     int64
		demand       DemandStats
		lastScrape   map[string]float64
		grav         = newGravity(opts.Seed, opts.Nodes)
		demandBodies []string
	)
	// Pre-generate every batch body up front so the byte stream offered
	// is a pure function of (Seed, BatchSize) regardless of timing.
	for i := 0; i < 4096; i++ {
		demandBodies = append(demandBodies, grav.batch(opts.BatchSize))
	}

	start := time.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// /metrics scrape client.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opts.ScrapeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s, body := timedGet(opts.Client, base+"/metrics")
				mu.Lock()
				scrapeNs = append(scrapeNs, s.ns)
				if s.err {
					scrapeErrs++
				} else if totals, err := obs.PromTotals(strings.NewReader(string(body))); err == nil {
					lastScrape = totals
				}
				mu.Unlock()
			}
		}
	}()

	// /queryz + /sliz client: alternate a history range query over the
	// decisions/sec SLI with a snapshot read.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opts.QueryInterval)
		defer ticker.Stop()
		flip := false
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				url := base + "/queryz?q=" + sli.MetricDecisionsPerSec + "&op=last"
				if flip {
					url = base + "/sliz"
				}
				flip = !flip
				s, _ := timedGet(opts.Client, url)
				mu.Lock()
				queryNs = append(queryNs, s.ns)
				if s.err {
					queryErrs++
				}
				mu.Unlock()
			}
		}
	}()

	// /demandz batch stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opts.BatchInterval)
		defer ticker.Stop()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				body := demandBodies[i%len(demandBodies)]
				i++
				resp, err := opts.Client.Post(base+"/demandz", "application/json", strings.NewReader(body))
				mu.Lock()
				demand.Batches++
				demand.Demands += opts.BatchSize
				if err != nil {
					demand.Errors++
					mu.Unlock()
					continue
				}
				var ar struct {
					OfferedGbps  float64 `json:"offered_gbps"`
					AdmittedGbps float64 `json:"admitted_gbps"`
					Admitted     int     `json:"admitted"`
					Rejected     int     `json:"rejected"`
				}
				if resp.StatusCode != http.StatusOK {
					demand.Errors++
				} else if derr := jsonDecode(resp.Body, &ar); derr != nil {
					demand.Errors++
				} else {
					demand.OfferedGbps += ar.OfferedGbps
					demand.AdmittedGbps += ar.AdmittedGbps
					demand.Admitted += ar.Admitted
					demand.Rejected += ar.Rejected
				}
				resp.Body.Close()
				mu.Unlock()
			}
		}
	}()

	// SSE subscribers: stream /traces until the run deadline; the
	// request context bounds the read, so these need no stop select —
	// the server or the deadline ends them.
	for i := 0; i < opts.SSEClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithDeadline(context.Background(), start.Add(opts.Duration))
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/traces", nil)
			if err != nil {
				return
			}
			resp, err := opts.Client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
			for sc.Scan() {
				line := sc.Text()
				mu.Lock()
				sseBytes += int64(len(line)) + 1
				if strings.HasPrefix(line, "data: ") {
					sseEvents++
				} else if strings.HasPrefix(line, ":") {
					sseComments++
				}
				mu.Unlock()
			}
		}()
	}

	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	// Closing scrape: the "after" edge. Falls back to the scrape
	// client's last successful read if the daemon is already draining.
	sEnd, body := timedGet(opts.Client, base+"/metrics")
	after := lastScrape
	if !sEnd.err {
		if totals, err := obs.PromTotals(strings.NewReader(string(body))); err == nil {
			after = totals
		}
	}
	if after == nil {
		return rep, fmt.Errorf("no successful scrape of %s/metrics during the run", base)
	}

	rep.DurationNs = elapsed.Nanoseconds()
	rep.Demand = demand
	rep.Scrape = clientStats(scrapeNs, scrapeErrs)
	rep.Query = clientStats(queryNs, queryErrs)

	decDelta := sumPrefix(after, sli.MetricDecisionsTotal) - sumPrefix(before, sli.MetricDecisionsTotal)
	rep.Service = ServiceStats{
		DecisionsDelta:  decDelta,
		RoundsDelta:     sumPrefix(after, sli.MetricRoundsTotal) - sumPrefix(before, sli.MetricRoundsTotal),
		DecisionsPerSec: decDelta / elapsed.Seconds(),
		ScrapesDelta:    sumPrefix(after, sli.MetricScrapesTotal) - sumPrefix(before, sli.MetricScrapesTotal),
		Generation:      sumPrefix(after, sli.MetricGeneration),
		ReloadFailures:  sumPrefix(after, sli.MetricReloadsTotal+`{result="`+sli.ReloadFailure+`"}`),
	}

	droppedSlow := sumPrefix(after, sli.MetricSSEDroppedTotal+`{cause="`+sli.DropSlowConsumer+`"}`) -
		sumPrefix(before, sli.MetricSSEDroppedTotal+`{cause="`+sli.DropSlowConsumer+`"}`)
	droppedShut := sumPrefix(after, sli.MetricSSEDroppedTotal+`{cause="`+sli.DropShutdown+`"}`)
	rep.SSE = SSEStats{
		Subscribers:          opts.SSEClients,
		Events:               sseEvents,
		Bytes:                sseBytes,
		DroppedSlowConsumer:  droppedSlow,
		DroppedShutdown:      droppedShut,
		EventsPerSec:         float64(sseEvents) / elapsed.Seconds(),
		HeartbeatsOrComments: sseComments,
	}
	if total := float64(sseEvents) + droppedSlow; total > 0 {
		rep.SSE.DropFraction = droppedSlow / total
	}
	return rep, nil
}
