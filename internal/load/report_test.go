package load

import (
	"bytes"
	"testing"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Report{
		Tool:       "rwc-loadgen",
		Target:     "http://127.0.0.1:7719",
		Seed:       42,
		DurationNs: 3e9,
		Demand:     DemandStats{Batches: 10, Demands: 160, Admitted: 120, Rejected: 40, OfferedGbps: 900, AdmittedGbps: 600},
		Scrape:     ClientStats{Requests: 30, P99Ns: 5e6},
		SSE:        SSEStats{Subscribers: 2, Events: 100, DroppedSlowConsumer: 25, DropFraction: 0.2},
		Service:    ServiceStats{DecisionsDelta: 84, DecisionsPerSec: 28, Generation: 2},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsReport(buf.Bytes()) {
		t.Fatal("IsReport does not recognize its own WriteJSON output")
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rep.Kind = ReportKind // WriteJSON stamps the kind
	if back != rep {
		t.Fatalf("round trip = %+v, want %+v", back, rep)
	}
}

func TestParseRejectsOtherKinds(t *testing.T) {
	if _, err := Parse([]byte(`{"kind":"rwc-perf"}`)); err == nil {
		t.Fatal("Parse accepted a perf artifact")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("Parse accepted garbage")
	}
	if IsReport([]byte(`{"kind":"rwc-perf"}`)) {
		t.Fatal("IsReport matched a perf artifact")
	}
}

func TestClientStatsPercentiles(t *testing.T) {
	// 1..100 in shuffled order: nearest-rank percentiles are exact.
	var samples []int64
	for i := 100; i >= 1; i-- {
		samples = append(samples, int64(i))
	}
	cs := clientStats(samples, 3)
	if cs.Requests != 100 || cs.Errors != 3 {
		t.Fatalf("counts = %+v", cs)
	}
	if cs.P50Ns != 50 || cs.P95Ns != 95 || cs.P99Ns != 99 || cs.MaxNs != 100 {
		t.Fatalf("percentiles = %+v", cs)
	}
	if cs.MeanNs != 50 { // floor(5050/100)
		t.Fatalf("mean = %d, want 50", cs.MeanNs)
	}
	if got := clientStats(nil, 0); got.Requests != 0 || got.P99Ns != 0 {
		t.Fatalf("empty stats = %+v", got)
	}
}

func TestGravityIsDeterministic(t *testing.T) {
	a, b := newGravity(7, 12), newGravity(7, 12)
	for i := 0; i < 5; i++ {
		if x, y := a.batch(8), b.batch(8); x != y {
			t.Fatalf("batch %d diverged:\n%s\n%s", i, x, y)
		}
	}
	if newGravity(7, 12).batch(8) == newGravity(8, 12).batch(8) {
		t.Fatal("different seeds produced identical batches")
	}
}
