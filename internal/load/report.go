// Package load is the deterministic load harness for service mode:
// it streams gravity-model demand batches, metrics scrapes, history
// queries, and SSE trace subscriptions at a running rwc-wansimd and
// reports what the service sustained — decisions per second, scrape
// latency percentiles, SSE delivered-vs-dropped — as a JSON artifact
// rwc-perfdiff can gate.
//
// "Deterministic" here means the offered load is reproducible: the
// demand volumes, batch sizes, and client mix derive from a seed via
// internal/rng, so two runs against equal daemons offer identical
// work. The measured latencies are wall-clock by nature — the report
// is a perf-side artifact, gated with multiplicative headroom, never
// a determinism artifact.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReportKind identifies the artifact in its JSON "kind" field.
const ReportKind = "rwc-load"

// Report is the load harness's JSON artifact.
type Report struct {
	Kind       string `json:"kind"` // always ReportKind
	Tool       string `json:"tool"`
	Target     string `json:"target"`
	Seed       uint64 `json:"seed"`
	DurationNs int64  `json:"duration_ns"`

	// Demand summarizes the /demandz stream.
	Demand DemandStats `json:"demand"`
	// Scrape and Query summarize the /metrics and /queryz clients.
	Scrape ClientStats `json:"scrape"`
	Query  ClientStats `json:"query"`
	// SSE summarizes the /traces subscribers.
	SSE SSEStats `json:"sse"`
	// Service holds daemon-side deltas read from the rwc_sli_* series
	// over the run window.
	Service ServiceStats `json:"service"`
}

// ClientStats are one HTTP client's request/latency figures.
type ClientStats struct {
	Requests int   `json:"requests"`
	Errors   int   `json:"errors"`
	P50Ns    int64 `json:"p50_ns"`
	P95Ns    int64 `json:"p95_ns"`
	P99Ns    int64 `json:"p99_ns"`
	MaxNs    int64 `json:"max_ns"`
	MeanNs   int64 `json:"mean_ns"`
}

// DemandStats summarize the demand batches and admission answers.
type DemandStats struct {
	Batches      int     `json:"batches"`
	Demands      int     `json:"demands"`
	Errors       int     `json:"errors"`
	OfferedGbps  float64 `json:"offered_gbps"`
	AdmittedGbps float64 `json:"admitted_gbps"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
}

// SSEStats summarize the /traces subscribers: what was delivered to
// the clients versus what the server dropped for them (read back from
// the daemon's SLI drop counters).
type SSEStats struct {
	Subscribers          int     `json:"subscribers"`
	Events               int     `json:"events"`
	Bytes                int64   `json:"bytes"`
	DroppedSlowConsumer  float64 `json:"dropped_slow_consumer"`
	DroppedShutdown      float64 `json:"dropped_shutdown"`
	DropFraction         float64 `json:"drop_fraction"`
	EventsPerSec         float64 `json:"events_per_sec"`
	HeartbeatsOrComments int     `json:"comments"`
}

// ServiceStats are daemon-side deltas over the run window, read from
// two /metrics scrapes (first and last).
type ServiceStats struct {
	DecisionsDelta  float64 `json:"decisions_delta"`
	RoundsDelta     float64 `json:"rounds_delta"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	ScrapesDelta    float64 `json:"scrapes_delta"`
	Generation      float64 `json:"config_generation"`
	ReloadFailures  float64 `json:"reload_failures"`
}

// IsReport sniffs whether data is a load report without a full parse.
func IsReport(data []byte) bool {
	return bytes.Contains(data, []byte(`"kind": "`+ReportKind+`"`)) ||
		bytes.Contains(data, []byte(`"kind":"`+ReportKind+`"`))
}

// Parse decodes and validates a load report.
func Parse(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, err
	}
	if r.Kind != ReportKind {
		return Report{}, fmt.Errorf("not a %s report (kind %q)", ReportKind, r.Kind)
	}
	return r, nil
}

// WriteJSON writes the report with stable indentation.
func (r Report) WriteJSON(w io.Writer) error {
	r.Kind = ReportKind
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// clientStats reduces raw latency samples (ns) to ClientStats.
func clientStats(samples []int64, errors int) ClientStats {
	cs := ClientStats{Requests: len(samples), Errors: errors}
	if len(samples) == 0 {
		return cs
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	cs.P50Ns = percentile(sorted, 0.50)
	cs.P95Ns = percentile(sorted, 0.95)
	cs.P99Ns = percentile(sorted, 0.99)
	cs.MaxNs = sorted[len(sorted)-1]
	cs.MeanNs = sum / int64(len(sorted))
	return cs
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
