package telemetry

// Robustness tests: the binary codecs must reject arbitrary garbage
// with an error — never panic, never hang, never over-allocate.

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestReadFleetNeverPanicsOnGarbage feeds random byte soup to the
// fleet decoder.
func TestReadFleetNeverPanicsOnGarbage(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64, size uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		local := rng.New(seed)
		buf := make([]byte, int(size)%4096)
		for i := range buf {
			buf[i] = byte(local.Uint64())
		}
		_, _ = ReadFleet(bytes.NewReader(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

// TestReadFleetGarbageAfterValidHeader prepends the real magic so the
// decoder gets deeper before the input rots.
func TestReadFleetGarbageAfterValidHeader(t *testing.T) {
	f := func(seed uint64, size uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		local := rng.New(seed)
		var buf bytes.Buffer
		buf.WriteString("RWCT")
		buf.Write([]byte{1, 0}) // valid version
		tail := make([]byte, int(size)%2048)
		for i := range tail {
			tail[i] = byte(local.Uint64())
		}
		buf.Write(tail)
		_, _ = ReadFleet(&buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameNeverPanicsOnGarbage does the same for the streaming
// frame parser.
func TestReadFrameNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed uint64, size uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		local := rng.New(seed)
		buf := make([]byte, int(size)%512)
		for i := range buf {
			buf[i] = byte(local.Uint64())
		}
		_, _, _ = readFrame(bytes.NewReader(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeCatalogNeverPanics fuzzes the catalog decoder.
func TestDecodeCatalogNeverPanics(t *testing.T) {
	f := func(seed uint64, size uint16) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		local := rng.New(seed)
		buf := make([]byte, int(size)%512)
		for i := range buf {
			buf[i] = byte(local.Uint64())
		}
		_, _ = decodeCatalog(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptFleetBitFlips flips each byte of a valid encoding and
// requires decode to either succeed (flip in sample data is legal) or
// fail cleanly.
func TestCorruptFleetBitFlips(t *testing.T) {
	fl := NewFleet()
	fl.Add(LinkRecord{Name: "a", Samples: []float64{1, 2, 3}})
	var buf bytes.Buffer
	if _, err := fl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("panic on flip at byte %d", i)
				}
			}()
			_, _ = ReadFleet(bytes.NewReader(mut))
		}()
	}
}
