package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReadFleetEveryTruncation cuts a valid stream at every byte
// boundary: each prefix must produce an error, never a panic or a
// silently short fleet.
func TestReadFleetEveryTruncation(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadFleet(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(data))
		}
	}
	// The untruncated stream still decodes (the loop above didn't rely
	// on a corrupt fixture).
	if _, err := ReadFleet(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
}

// TestReadFleetFlippedMagic flips each bit of each magic byte in turn:
// every corruption must be rejected before any allocation-heavy
// decoding happens.
func TestReadFleetFlippedMagic(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for pos := 0; pos < 4; pos++ {
		for bit := 0; bit < 8; bit++ {
			corrupt := append([]byte(nil), data...)
			corrupt[pos] ^= 1 << bit
			if _, err := ReadFleet(bytes.NewReader(corrupt)); err == nil {
				t.Fatalf("flipped bit %d of magic byte %d accepted", bit, pos)
			}
		}
	}
}

// TestWriteSummaryJSONEmptyFleet asserts the summary of a fleet with no
// links is valid JSON with zero counts, not an error or a null blob.
func TestWriteSummaryJSONEmptyFleet(t *testing.T) {
	f := NewFleet()
	var buf bytes.Buffer
	if err := f.WriteSummaryJSON(&buf); err != nil {
		t.Fatalf("empty fleet summary failed: %v", err)
	}
	var out struct {
		IntervalSeconds float64           `json:"interval_seconds"`
		Links           []json.RawMessage `json:"links"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if out.IntervalSeconds <= 0 {
		t.Fatalf("interval_seconds = %v, want the default interval", out.IntervalSeconds)
	}
	if len(out.Links) != 0 {
		t.Fatalf("links has %d entries, want 0", len(out.Links))
	}
}
