// Package telemetry stores SNR time series the way an operator's
// monitoring pipeline would: a fleet of named links, each with a
// 15-minute sample stream, serializable to a compact binary format and
// exportable as JSON. The snrgen tool writes these files; experiments
// can reload them instead of regenerating.
package telemetry

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/snr"
)

// LinkRecord is one wavelength's telemetry.
type LinkRecord struct {
	// Name identifies the link (e.g. "fiber012-wl03").
	Name string
	// Fiber and Wavelength locate the link physically.
	Fiber, Wavelength int
	// BaselinedB is the generative baseline (kept for calibration
	// introspection; a real pipeline would not have it).
	BaselinedB float64
	// Samples holds SNR in dB at the fleet's cadence.
	Samples []float64
}

// Fleet is a collection of link telemetry with a common cadence.
type Fleet struct {
	// Interval is the sampling cadence (15 minutes in the paper).
	Interval time.Duration
	Links    []LinkRecord
}

// NewFleet returns an empty fleet at the paper's cadence.
func NewFleet() *Fleet {
	return &Fleet{Interval: snr.SampleInterval}
}

// Add appends a link record.
func (f *Fleet) Add(rec LinkRecord) { f.Links = append(f.Links, rec) }

// Duration returns the covered time of the longest link.
func (f *Fleet) Duration() time.Duration {
	maxN := 0
	for _, l := range f.Links {
		if len(l.Samples) > maxN {
			maxN = len(l.Samples)
		}
	}
	return time.Duration(maxN) * f.Interval
}

// Binary format:
//
//	magic "RWCT" | u16 version | i64 interval (ns) | u32 nLinks
//	per link: u16 nameLen | name | i32 fiber | i32 wavelength |
//	          f64 baseline | u32 nSamples | nSamples × f32
//
// Samples are stored as float32: 24-bit mantissa gives far better than
// the 0.01 dB precision optical telemetry reports.
const (
	magic   = "RWCT"
	version = 1
)

// ErrBadFormat reports a corrupt or foreign input stream.
var ErrBadFormat = errors.New("telemetry: bad format")

// WriteTo serializes the fleet.
func (f *Fleet) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	if err := write(uint16(version)); err != nil {
		return n, err
	}
	if err := write(int64(f.Interval)); err != nil {
		return n, err
	}
	if err := write(uint32(len(f.Links))); err != nil {
		return n, err
	}
	for _, l := range f.Links {
		if len(l.Name) > math.MaxUint16 {
			return n, fmt.Errorf("telemetry: link name too long (%d bytes)", len(l.Name))
		}
		if err := write(uint16(len(l.Name))); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(l.Name); err != nil {
			return n, err
		}
		n += int64(len(l.Name))
		if err := write(int32(l.Fiber)); err != nil {
			return n, err
		}
		if err := write(int32(l.Wavelength)); err != nil {
			return n, err
		}
		if err := write(l.BaselinedB); err != nil {
			return n, err
		}
		if err := write(uint32(len(l.Samples))); err != nil {
			return n, err
		}
		for _, s := range l.Samples {
			if err := write(float32(s)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFleet deserializes a fleet written by WriteTo.
func ReadFleet(r io.Reader) (*Fleet, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, head)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	var interval int64
	if err := binary.Read(br, binary.LittleEndian, &interval); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("%w: non-positive interval", ErrBadFormat)
	}
	var nLinks uint32
	if err := binary.Read(br, binary.LittleEndian, &nLinks); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	const maxLinks = 1 << 20 // sanity bound against corrupt counts
	if nLinks > maxLinks {
		return nil, fmt.Errorf("%w: %d links", ErrBadFormat, nLinks)
	}
	f := &Fleet{Interval: time.Duration(interval)}
	for i := uint32(0); i < nLinks; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		var rec LinkRecord
		rec.Name = string(name)
		var fiber, wl int32
		if err := binary.Read(br, binary.LittleEndian, &fiber); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &wl); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		rec.Fiber, rec.Wavelength = int(fiber), int(wl)
		if err := binary.Read(br, binary.LittleEndian, &rec.BaselinedB); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		var nSamples uint32
		if err := binary.Read(br, binary.LittleEndian, &nSamples); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		const maxSamples = 1 << 28
		if nSamples > maxSamples {
			return nil, fmt.Errorf("%w: %d samples", ErrBadFormat, nSamples)
		}
		rec.Samples = make([]float64, nSamples)
		buf := make([]float32, nSamples)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		for j, v := range buf {
			rec.Samples[j] = float64(v)
		}
		f.Links = append(f.Links, rec)
	}
	return f, nil
}

// summaryJSON is the JSON export shape: per-link scalar summaries, not
// raw samples (those belong in the binary format).
type summaryJSON struct {
	IntervalSeconds float64           `json:"interval_seconds"`
	Links           []linkSummaryJSON `json:"links"`
}

type linkSummaryJSON struct {
	Name       string  `json:"name"`
	Fiber      int     `json:"fiber"`
	Wavelength int     `json:"wavelength"`
	Baseline   float64 `json:"baseline_db"`
	Samples    int     `json:"samples"`
	MeanSNR    float64 `json:"mean_snr_db"`
	MinSNR     float64 `json:"min_snr_db"`
	MaxSNR     float64 `json:"max_snr_db"`
}

// WriteSummaryJSON exports per-link scalar summaries as JSON.
func (f *Fleet) WriteSummaryJSON(w io.Writer) error {
	out := summaryJSON{IntervalSeconds: f.Interval.Seconds()}
	for _, l := range f.Links {
		ls := linkSummaryJSON{
			Name: l.Name, Fiber: l.Fiber, Wavelength: l.Wavelength,
			Baseline: l.BaselinedB, Samples: len(l.Samples),
		}
		if len(l.Samples) > 0 {
			lo, hi, sum := l.Samples[0], l.Samples[0], 0.0
			for _, v := range l.Samples {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				sum += v
			}
			ls.MinSNR, ls.MaxSNR = lo, hi
			ls.MeanSNR = sum / float64(len(l.Samples))
		}
		out.Links = append(out.Links, ls)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
