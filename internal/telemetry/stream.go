package telemetry

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// This file implements the wire side of the telemetry pipeline: a TCP
// server that streams per-link SNR samples to subscribers (the role an
// optical monitoring collector plays in production) and a client the
// controller consumes updates from.
//
// Wire protocol (all little-endian, length-prefixed):
//
//	frame := u32 length | u8 type | payload
//	type 1 (sample):  u32 linkIndex | i64 unixNano | f32 snrdB
//	type 2 (catalog): u32 nLinks | nLinks × (u16 nameLen | name)
//
// A session starts with one catalog frame, then sample frames until
// either side closes. The framing keeps parsing trivial and the
// fixed-size sample payload keeps the hot path allocation-free.

// Frame types.
const (
	frameSample  = 1
	frameCatalog = 2
)

// maxFrame bounds a frame length against corrupt peers.
const maxFrame = 1 << 20

// Sample is one SNR observation for a link.
type Sample struct {
	// LinkIndex refers into the session catalog.
	LinkIndex int
	// Time is the observation timestamp.
	Time time.Time
	// SNRdB is the observed SNR.
	SNRdB float64
}

// ErrFrameTooLarge reports a frame exceeding the protocol bound.
var ErrFrameTooLarge = errors.New("telemetry: frame too large")

// writeFrame writes one frame.
func writeFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return ErrFrameTooLarge
	}
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)+1))
	head[4] = frameType
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return head[4], payload, nil
}

// encodeSample packs a sample payload.
func encodeSample(s Sample) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(s.LinkIndex))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(s.Time.UnixNano()))
	binary.LittleEndian.PutUint32(buf[12:16], math.Float32bits(float32(s.SNRdB)))
	return buf
}

// decodeSample unpacks a sample payload.
func decodeSample(p []byte) (Sample, error) {
	if len(p) != 16 {
		return Sample{}, fmt.Errorf("telemetry: sample payload %d bytes, want 16", len(p))
	}
	return Sample{
		LinkIndex: int(binary.LittleEndian.Uint32(p[0:4])),
		Time:      time.Unix(0, int64(binary.LittleEndian.Uint64(p[4:12]))),
		SNRdB:     float64(math.Float32frombits(binary.LittleEndian.Uint32(p[12:16]))),
	}, nil
}

// encodeCatalog packs the link-name catalog.
func encodeCatalog(names []string) ([]byte, error) {
	size := 4
	for _, n := range names {
		if len(n) > math.MaxUint16 {
			return nil, fmt.Errorf("telemetry: link name too long")
		}
		size += 2 + len(n)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(names)))
	buf = append(buf, tmp[:]...)
	for _, n := range names {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(n)))
		buf = append(buf, l[:]...)
		buf = append(buf, n...)
	}
	return buf, nil
}

// decodeCatalog unpacks the catalog.
func decodeCatalog(p []byte) ([]string, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("telemetry: catalog too short")
	}
	n := binary.LittleEndian.Uint32(p[:4])
	if n > 1<<20 {
		return nil, fmt.Errorf("telemetry: absurd catalog size %d", n)
	}
	names := make([]string, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+2 > len(p) {
			return nil, fmt.Errorf("telemetry: truncated catalog")
		}
		l := int(binary.LittleEndian.Uint16(p[off : off+2]))
		off += 2
		if off+l > len(p) {
			return nil, fmt.Errorf("telemetry: truncated catalog name")
		}
		names = append(names, string(p[off:off+l]))
		off += l
	}
	return names, nil
}

// Server streams SNR samples to every connected subscriber.
type Server struct {
	names []string

	mu       sync.Mutex
	ln       net.Listener
	subs     map[net.Conn]chan Sample
	closed   bool
	wg       sync.WaitGroup
	sendBuf  int
	dropSlow bool
}

// NewServer creates a server publishing the given link catalog.
func NewServer(linkNames []string) *Server {
	return &Server{
		names:    append([]string(nil), linkNames...),
		subs:     make(map[net.Conn]chan Sample),
		sendBuf:  256,
		dropSlow: true,
	}
}

// Serve listens on addr ("127.0.0.1:0" for an ephemeral port) and
// accepts subscribers until ctx is done or Close is called. It returns
// the bound address via the Addr method after it starts listening; use
// the returned ready channel pattern: Serve blocks, so run it in a
// goroutine and wait on Addr.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("telemetry: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	go func() {
		<-ctx.Done()
		s.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listen address, or nil before Serve listens.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// handle serves one subscriber.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	ch := make(chan Sample, s.sendBuf)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.subs[conn] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, conn)
		s.mu.Unlock()
	}()

	bw := bufio.NewWriter(conn)
	catalog, err := encodeCatalog(s.names)
	if err != nil {
		return
	}
	if err := writeFrame(bw, frameCatalog, catalog); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	for sample := range ch {
		if err := writeFrame(bw, frameSample, encodeSample(sample)); err != nil {
			return
		}
		// Flush opportunistically: drain the channel first so bursts
		// coalesce into one syscall.
		if len(ch) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
	bw.Flush()
}

// Publish fans a sample out to every subscriber. Slow subscribers are
// skipped (telemetry is a lossy feed; the next sample supersedes).
func (s *Server) Publish(sample Sample) error {
	if sample.LinkIndex < 0 || sample.LinkIndex >= len(s.names) {
		return fmt.Errorf("telemetry: link index %d outside catalog", sample.LinkIndex)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("telemetry: server closed")
	}
	for _, ch := range s.subs {
		select {
		case ch <- sample:
		default:
			if !s.dropSlow {
				ch <- sample
			}
		}
	}
	return nil
}

// Close stops the listener and disconnects subscribers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn, ch := range s.subs {
		close(ch)
		_ = conn
	}
	s.subs = make(map[net.Conn]chan Sample)
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client subscribes to a telemetry server.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	names []string
}

// Dial connects and reads the catalog frame.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	ft, payload, err := readFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("telemetry: reading catalog: %w", err)
	}
	if ft != frameCatalog {
		conn.Close()
		return nil, fmt.Errorf("telemetry: expected catalog frame, got type %d", ft)
	}
	names, err := decodeCatalog(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.names = names
	_ = conn.SetReadDeadline(time.Time{})
	return c, nil
}

// LinkNames returns the catalog announced by the server.
func (c *Client) LinkNames() []string { return append([]string(nil), c.names...) }

// Next blocks for the next sample. io.EOF (possibly wrapped) reports a
// clean server shutdown.
func (c *Client) Next() (Sample, error) {
	for {
		ft, payload, err := readFrame(c.br)
		if err != nil {
			return Sample{}, err
		}
		switch ft {
		case frameSample:
			s, err := decodeSample(payload)
			if err != nil {
				return Sample{}, err
			}
			if s.LinkIndex < 0 || s.LinkIndex >= len(c.names) {
				return Sample{}, fmt.Errorf("telemetry: sample for unknown link %d", s.LinkIndex)
			}
			return s, nil
		case frameCatalog:
			// A server restart mid-stream could resend it; refresh.
			names, err := decodeCatalog(payload)
			if err != nil {
				return Sample{}, err
			}
			c.names = names
		default:
			return Sample{}, fmt.Errorf("telemetry: unknown frame type %d", ft)
		}
	}
}

// SetDeadline bounds the next Read.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }
