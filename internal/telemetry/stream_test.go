package telemetry

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// startServer runs a server on an ephemeral port and returns it with
// its address.
func startServer(t *testing.T, names []string) (*Server, string) {
	t.Helper()
	srv := NewServer(names)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(context.Background(), "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server did not start listening")
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve returned early: %v", err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		srv.Close()
		if err := <-errCh; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, srv.Addr().String()
}

func TestClientReceivesCatalogAndSamples(t *testing.T) {
	names := []string{"fiber000-wl00", "fiber000-wl01"}
	srv, addr := startServer(t, names)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := c.LinkNames()
	if len(got) != 2 || got[0] != names[0] || got[1] != names[1] {
		t.Fatalf("catalog = %v", got)
	}

	want := Sample{LinkIndex: 1, Time: time.Unix(0, 1234567890), SNRdB: 15.25}
	// Publish until the subscriber is registered (subscription races
	// the first publish).
	go func() {
		for i := 0; i < 200; i++ {
			_ = srv.Publish(want)
			time.Sleep(5 * time.Millisecond)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	s, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s.LinkIndex != want.LinkIndex || !s.Time.Equal(want.Time) || s.SNRdB != 15.25 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	srv, addr := startServer(t, []string{"l0"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	clients := make([]*Client, 3)
	for i := range clients {
		c, err := Dial(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	go func() {
		for i := 0; i < 200; i++ {
			_ = srv.Publish(Sample{LinkIndex: 0, Time: time.Now(), SNRdB: 10})
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for i, c := range clients {
		if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Next(); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestPublishRejectsUnknownLink(t *testing.T) {
	srv := NewServer([]string{"l0"})
	if err := srv.Publish(Sample{LinkIndex: 5}); err == nil {
		t.Fatal("out-of-catalog sample accepted")
	}
	if err := srv.Publish(Sample{LinkIndex: -1}); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, addr := startServer(t, []string{"l0"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	_, err = c.Next()
	if err == nil {
		t.Fatal("Next succeeded after server close")
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
		t.Logf("close surfaced as: %v", err) // any terminal error is fine
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	srv := NewServer([]string{"l0"})
	srv.Close()
	if err := srv.Publish(Sample{LinkIndex: 0}); err == nil {
		t.Fatal("publish after close accepted")
	}
}

func TestDialRejectsNonServer(t *testing.T) {
	// A listener that immediately sends garbage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("not a telemetry stream at all............"))
		conn.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Dial(ctx, ln.Addr().String()); err == nil {
		t.Fatal("garbage server accepted")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	srv, addr := startServer(t, []string{"l0"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Never read; publish far more than the buffer. Publish must not
	// block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			_ = srv.Publish(Sample{LinkIndex: 0, SNRdB: float64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := Sample{LinkIndex: 7, Time: time.Unix(123, 456), SNRdB: -2.5}
	if err := writeFrame(&buf, frameSample, encodeSample(s)); err != nil {
		t.Fatal(err)
	}
	ft, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameSample {
		t.Fatalf("type = %d", ft)
	}
	got, err := decodeSample(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.LinkIndex != 7 || !got.Time.Equal(s.Time) || got.SNRdB != -2.5 {
		t.Fatalf("sample = %+v", got)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// Zero-length frame is also invalid.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0, 1})
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("zero frame accepted")
	}
}

func TestDecodeSampleBadLength(t *testing.T) {
	if _, err := decodeSample([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	names := []string{"a", "", "fiber012-wl34", "日本"}
	enc, err := encodeCatalog(names)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeCatalog(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(names) {
		t.Fatalf("len = %d", len(dec))
	}
	for i := range names {
		if dec[i] != names[i] {
			t.Fatalf("name %d: %q != %q", i, dec[i], names[i])
		}
	}
}

func TestDecodeCatalogCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                       // too short
		{1, 0, 0, 0},             // claims 1 name, no data
		{1, 0, 0, 0, 10, 0, 'a'}, // name length overruns
		{0xff, 0xff, 0xff, 0xff}, // absurd count
	}
	for i, p := range cases {
		if _, err := decodeCatalog(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmptyCatalog(t *testing.T) {
	enc, err := encodeCatalog(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeCatalog(enc)
	if err != nil || len(dec) != 0 {
		t.Fatalf("dec = %v, err = %v", dec, err)
	}
}
