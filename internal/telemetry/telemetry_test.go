package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/snr"
)

func sampleFleet() *Fleet {
	f := NewFleet()
	r := rng.New(3)
	for i := 0; i < 3; i++ {
		samples := make([]float64, 100)
		for j := range samples {
			samples[j] = 15 + r.NormFloat64()
		}
		f.Add(LinkRecord{
			Name:       "fiber000-wl0" + string(rune('0'+i)),
			Fiber:      0,
			Wavelength: i,
			BaselinedB: 15,
			Samples:    samples,
		})
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Interval != f.Interval {
		t.Fatalf("interval %v != %v", g.Interval, f.Interval)
	}
	if len(g.Links) != len(f.Links) {
		t.Fatalf("links %d != %d", len(g.Links), len(f.Links))
	}
	for i := range f.Links {
		a, b := f.Links[i], g.Links[i]
		if a.Name != b.Name || a.Fiber != b.Fiber || a.Wavelength != b.Wavelength {
			t.Fatalf("link %d metadata mismatch", i)
		}
		if a.BaselinedB != b.BaselinedB {
			t.Fatalf("link %d baseline mismatch", i)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("link %d sample count mismatch", i)
		}
		for j := range a.Samples {
			// float32 round trip: within 1e-4 dB.
			if math.Abs(a.Samples[j]-b.Samples[j]) > 1e-4 {
				t.Fatalf("link %d sample %d: %v vs %v", i, j, a.Samples[j], b.Samples[j])
			}
		}
	}
}

func TestRoundTripEmptyFleet(t *testing.T) {
	f := NewFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 0 {
		t.Fatal("empty fleet round-tripped with links")
	}
}

func TestRoundTripEmptySamples(t *testing.T) {
	f := NewFleet()
	f.Add(LinkRecord{Name: "x"})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 1 || len(g.Links[0].Samples) != 0 {
		t.Fatal("empty-samples link mangled")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := ReadFleet(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 5, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadFleet(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	f := NewFleet()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := ReadFleet(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadRejectsHugeCounts(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("RWCT")
	buf.Write([]byte{1, 0})                   // version 1
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // interval (huge but positive LE? -> this is 0x0100000000000000)
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // nLinks absurd
	if _, err := ReadFleet(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("absurd link count accepted")
	}
}

func TestFleetDuration(t *testing.T) {
	f := NewFleet()
	f.Add(LinkRecord{Samples: make([]float64, 4)})
	f.Add(LinkRecord{Samples: make([]float64, 8)})
	if f.Duration() != 8*snr.SampleInterval {
		t.Fatalf("duration = %v", f.Duration())
	}
	if NewFleet().Duration() != 0 {
		t.Fatal("empty fleet duration nonzero")
	}
}

func TestDefaultInterval(t *testing.T) {
	if NewFleet().Interval != 15*time.Minute {
		t.Fatalf("interval = %v", NewFleet().Interval)
	}
}

func TestSummaryJSON(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	if err := f.WriteSummaryJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		IntervalSeconds float64 `json:"interval_seconds"`
		Links           []struct {
			Name    string  `json:"name"`
			MeanSNR float64 `json:"mean_snr_db"`
			MinSNR  float64 `json:"min_snr_db"`
			MaxSNR  float64 `json:"max_snr_db"`
			Samples int     `json:"samples"`
		} `json:"links"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.IntervalSeconds != 900 {
		t.Fatalf("interval seconds = %v", parsed.IntervalSeconds)
	}
	if len(parsed.Links) != 3 {
		t.Fatalf("links = %d", len(parsed.Links))
	}
	for _, l := range parsed.Links {
		if l.Samples != 100 {
			t.Fatalf("samples = %d", l.Samples)
		}
		if l.MeanSNR < 13 || l.MeanSNR > 17 {
			t.Fatalf("mean = %v", l.MeanSNR)
		}
		if l.MinSNR > l.MeanSNR || l.MaxSNR < l.MeanSNR {
			t.Fatal("min/mean/max ordering broken")
		}
	}
}

func TestWriteToByteCount(t *testing.T) {
	f := sampleFleet()
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
}
