package modulation

import (
	"math"
	"testing"
)

func TestShannonReproducesPublishedAnchor100G(t *testing.T) {
	// The paper publishes 6.5 dB for 100 Gbps. With 32 GBd dual-pol
	// and 0.8 code rate, 100 G needs ~1.95 bits/sym/pol: Shannon says
	// ~4.6 dB, so a ~2 dB gap lands at ~6.6 dB.
	p := DefaultShannonParams()
	th, err := p.RequiredSNRdB(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-6.5) > 1.0 {
		t.Fatalf("derived 100G threshold = %v dB, want ≈ 6.5", th)
	}
}

func TestShannonAnchor50GWithinReason(t *testing.T) {
	p := DefaultShannonParams()
	th, err := p.RequiredSNRdB(50)
	if err != nil {
		t.Fatal(err)
	}
	// Published anchor is 3.0 dB; derivation should land within ~1.5 dB
	// (real BPSK/low-rate modes carry extra overheads).
	if math.Abs(th-3.0) > 1.5 {
		t.Fatalf("derived 50G threshold = %v dB, want ≈ 3.0", th)
	}
}

func TestShannonLadderOrdering(t *testing.T) {
	l, err := ShannonLadder(DefaultShannonParams())
	if err != nil {
		t.Fatal(err)
	}
	modes := l.Modes()
	if len(modes) != 6 {
		t.Fatalf("%d rungs", len(modes))
	}
	for i := 1; i < len(modes); i++ {
		if modes[i].MinSNRdB <= modes[i-1].MinSNRdB {
			t.Fatal("thresholds not increasing")
		}
	}
}

func TestShannonLadderNearAssumedLadder(t *testing.T) {
	// Cross-check DESIGN.md: the derived ladder should land within
	// ~2.5 dB of the assumed ladder on every rung.
	derived, err := ShannonLadder(DefaultShannonParams())
	if err != nil {
		t.Fatal(err)
	}
	assumed := Default()
	for _, m := range assumed.Modes() {
		d, ok := derived.ModeFor(m.Capacity)
		if !ok {
			t.Fatalf("derived ladder missing %v Gbps", m.Capacity)
		}
		if math.Abs(d.MinSNRdB-m.MinSNRdB) > 2.5 {
			t.Errorf("%v Gbps: derived %v dB vs assumed %v dB", m.Capacity, d.MinSNRdB, m.MinSNRdB)
		}
	}
}

func TestShannonValidation(t *testing.T) {
	bad := []ShannonParams{
		{SymbolRateGBd: 0, CodeRate: 0.8, GapdB: 2},
		{SymbolRateGBd: 32, CodeRate: 0, GapdB: 2},
		{SymbolRateGBd: 32, CodeRate: 1.2, GapdB: 2},
		{SymbolRateGBd: 32, CodeRate: 0.8, GapdB: -1},
	}
	for i, p := range bad {
		if _, err := ShannonLadder(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := p.RequiredSNRdB(100); err == nil {
			t.Errorf("case %d RequiredSNRdB accepted", i)
		}
	}
	if _, err := DefaultShannonParams().RequiredSNRdB(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestShannonMonotoneInCapacity(t *testing.T) {
	p := DefaultShannonParams()
	prev := -100.0
	for c := Gbps(25); c <= 400; c += 25 {
		th, err := p.RequiredSNRdB(c)
		if err != nil {
			t.Fatal(err)
		}
		if th <= prev {
			t.Fatalf("threshold not increasing at %v Gbps", c)
		}
		prev = th
	}
}

func TestShannonGapShiftsThresholds(t *testing.T) {
	a := DefaultShannonParams()
	b := a
	b.GapdB = a.GapdB + 1
	ta, _ := a.RequiredSNRdB(150)
	tb, _ := b.RequiredSNRdB(150)
	if math.Abs(tb-ta-1) > 1e-9 {
		t.Fatalf("gap shift: %v -> %v", ta, tb)
	}
}
