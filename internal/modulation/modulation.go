// Package modulation models the coherent-transceiver modulation ladder
// the paper's hardware exposes: the set of capacity denominations
// {50, 100, 125, 150, 175, 200 Gbps}, the minimum SNR required to run a
// wavelength at each denomination, and the digital modulation format
// behind each rate (Figure 5 shows QPSK at 100 Gbps, 8QAM at 150 Gbps
// and 16QAM at 200 Gbps on the paper's testbed).
//
// The paper publishes two threshold anchors — 6.5 dB for 100 Gbps and
// 3.0 dB for 50 Gbps (§2.1, §2.2) — and states the remaining thresholds
// are "specific to our hardware, fiber length, fiber type, and
// wavelength". We complete the ladder with an evenly spaced progression
// consistent with the ordering in Figure 1; see DESIGN.md for the
// substitution note and EXPERIMENTS.md for sensitivity analysis.
package modulation

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Gbps is a link capacity in gigabits per second.
type Gbps float64

// Format identifies a digital modulation format.
type Format int

// Modulation formats used by the paper's bandwidth variable transceiver.
// The 125 and 175 Gbps rates use time-interleaved hybrid formats, as
// flex-rate coherent transceivers do.
const (
	FormatNone Format = iota
	FormatBPSK
	FormatQPSK
	FormatHybridQPSK8QAM
	Format8QAM
	FormatHybrid8QAM16QAM
	Format16QAM
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case FormatNone:
		return "none"
	case FormatBPSK:
		return "BPSK"
	case FormatQPSK:
		return "QPSK"
	case FormatHybridQPSK8QAM:
		return "QPSK/8QAM hybrid"
	case Format8QAM:
		return "8QAM"
	case FormatHybrid8QAM16QAM:
		return "8QAM/16QAM hybrid"
	case Format16QAM:
		return "16QAM"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// BitsPerSymbol returns the average number of bits carried per symbol.
// Hybrid formats time-interleave their two constituents equally.
func (f Format) BitsPerSymbol() float64 {
	switch f {
	case FormatBPSK:
		return 1
	case FormatQPSK:
		return 2
	case FormatHybridQPSK8QAM:
		return 2.5
	case Format8QAM:
		return 3
	case FormatHybrid8QAM16QAM:
		return 3.5
	case Format16QAM:
		return 4
	default:
		return 0
	}
}

// Mode is one rung of the capacity ladder: a capacity, its modulation
// format, and the minimum SNR (dB) the wavelength must sustain.
type Mode struct {
	Capacity Gbps
	Format   Format
	// MinSNRdB is the threshold below which the link cannot run at
	// Capacity. The paper's "capacity threshold".
	MinSNRdB float64
}

// Ladder is an ascending (by capacity) set of modes. The paper's
// hardware offers 100..200 Gbps in 25 Gbps steps, plus the 50 Gbps
// fallback used in the availability analysis (§2.2).
type Ladder struct {
	modes []Mode
}

// Default returns the calibrated ladder used throughout the
// reproduction. Anchors 3.0 dB → 50 Gbps and 6.5 dB → 100 Gbps are from
// the paper; the 125–200 Gbps thresholds continue the progression.
func Default() *Ladder {
	l, err := NewLadder([]Mode{
		{Capacity: 50, Format: FormatBPSK, MinSNRdB: 3.0},
		{Capacity: 100, Format: FormatQPSK, MinSNRdB: 6.5},
		{Capacity: 125, Format: FormatHybridQPSK8QAM, MinSNRdB: 8.5},
		{Capacity: 150, Format: Format8QAM, MinSNRdB: 10.5},
		{Capacity: 175, Format: FormatHybrid8QAM16QAM, MinSNRdB: 13.0},
		{Capacity: 200, Format: Format16QAM, MinSNRdB: 15.5},
	})
	if err != nil {
		panic(err) // the default ladder is a compile-time constant in spirit
	}
	return l
}

// NewLadder validates and constructs a Ladder. Modes must have strictly
// increasing capacities and strictly increasing SNR thresholds: a higher
// rate always needs more SNR.
func NewLadder(modes []Mode) (*Ladder, error) {
	if len(modes) == 0 {
		return nil, fmt.Errorf("modulation: ladder needs at least one mode")
	}
	sorted := append([]Mode(nil), modes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Capacity < sorted[j].Capacity })
	for i := range sorted {
		if sorted[i].Capacity <= 0 {
			return nil, fmt.Errorf("modulation: non-positive capacity %v", sorted[i].Capacity)
		}
		if i > 0 {
			if stats.ApproxInDelta(float64(sorted[i].Capacity), float64(sorted[i-1].Capacity), stats.DefaultTol) {
				return nil, fmt.Errorf("modulation: duplicate capacity %v", sorted[i].Capacity)
			}
			if sorted[i].MinSNRdB <= sorted[i-1].MinSNRdB {
				return nil, fmt.Errorf("modulation: SNR threshold not increasing at %v Gbps", sorted[i].Capacity)
			}
		}
	}
	return &Ladder{modes: sorted}, nil
}

// Modes returns the modes in ascending capacity order. The slice is a
// copy; mutating it does not affect the ladder.
func (l *Ladder) Modes() []Mode {
	return append([]Mode(nil), l.modes...)
}

// Capacities returns just the capacities, ascending.
func (l *Ladder) Capacities() []Gbps {
	out := make([]Gbps, len(l.modes))
	for i, m := range l.modes {
		out[i] = m.Capacity
	}
	return out
}

// FeasibleCapacity returns the highest capacity whose threshold is at or
// below snrdB, and whether any rung is feasible at all. This implements
// the paper's "feasible capacity for each link based on the lower SNR
// limit of its highest density region" computation.
func (l *Ladder) FeasibleCapacity(snrdB float64) (Mode, bool) {
	var best Mode
	found := false
	for _, m := range l.modes {
		if snrdB >= m.MinSNRdB {
			best = m
			found = true
		} else {
			break
		}
	}
	return best, found
}

// ModeFor returns the mode with exactly the given capacity.
func (l *Ladder) ModeFor(c Gbps) (Mode, bool) {
	for _, m := range l.modes {
		if stats.ApproxInDelta(float64(m.Capacity), float64(c), stats.DefaultTol) {
			return m, true
		}
	}
	return Mode{}, false
}

// ThresholdFor returns the SNR threshold for the given capacity. It is
// an error to ask for a capacity outside the ladder.
func (l *Ladder) ThresholdFor(c Gbps) (float64, error) {
	m, ok := l.ModeFor(c)
	if !ok {
		return 0, fmt.Errorf("modulation: capacity %v Gbps not in ladder", c)
	}
	return m.MinSNRdB, nil
}

// Max returns the highest-capacity mode.
func (l *Ladder) Max() Mode { return l.modes[len(l.modes)-1] }

// Min returns the lowest-capacity mode.
func (l *Ladder) Min() Mode { return l.modes[0] }

// NextUp returns the next rung above capacity c, if any.
func (l *Ladder) NextUp(c Gbps) (Mode, bool) {
	for _, m := range l.modes {
		if m.Capacity > c {
			return m, true
		}
	}
	return Mode{}, false
}

// NextDown returns the next rung below capacity c, if any.
func (l *Ladder) NextDown(c Gbps) (Mode, bool) {
	for i := len(l.modes) - 1; i >= 0; i-- {
		if l.modes[i].Capacity < c {
			return l.modes[i], true
		}
	}
	return Mode{}, false
}

// SNRdBToLinear converts a dB SNR to a linear power ratio.
func SNRdBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// SNRLinearToDB converts a linear power ratio to dB.
func SNRLinearToDB(lin float64) float64 { return 10 * math.Log10(lin) }
