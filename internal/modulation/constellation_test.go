package modulation

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestIdealConstellationSizes(t *testing.T) {
	cases := map[Format]int{
		FormatBPSK:  2,
		FormatQPSK:  4,
		Format8QAM:  8,
		Format16QAM: 16,
	}
	for f, want := range cases {
		c, err := IdealConstellation(f)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if len(c.Points) != want {
			t.Errorf("%v has %d points, want %d", f, len(c.Points), want)
		}
	}
}

func TestIdealConstellationHybridRejected(t *testing.T) {
	for _, f := range []Format{FormatHybridQPSK8QAM, FormatHybrid8QAM16QAM, FormatNone} {
		if _, err := IdealConstellation(f); err == nil {
			t.Errorf("%v: expected error", f)
		}
	}
}

func TestConstellationUnitPower(t *testing.T) {
	for _, f := range []Format{FormatBPSK, FormatQPSK, Format8QAM, Format16QAM} {
		c, err := IdealConstellation(f)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for _, s := range c.Points {
			p += s.I*s.I + s.Q*s.Q
		}
		p /= float64(len(c.Points))
		if math.Abs(p-1) > 1e-9 {
			t.Errorf("%v average power = %v, want 1", f, p)
		}
	}
}

func TestConstellationPointsDistinct(t *testing.T) {
	for _, f := range []Format{FormatQPSK, Format8QAM, Format16QAM} {
		c, _ := IdealConstellation(f)
		for i := range c.Points {
			for j := i + 1; j < len(c.Points); j++ {
				di := c.Points[i].I - c.Points[j].I
				dq := c.Points[i].Q - c.Points[j].Q
				if di*di+dq*dq < 1e-6 {
					t.Errorf("%v: points %d and %d coincide", f, i, j)
				}
			}
		}
	}
}

func TestReceivedCount(t *testing.T) {
	c, _ := IdealConstellation(FormatQPSK)
	r := rng.New(1)
	if got := c.Received(r, 0, 20); got != nil {
		t.Fatal("n=0 should return nil")
	}
	if got := c.Received(r, 500, 20); len(got) != 500 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestReceivedHighSNRNearIdeal(t *testing.T) {
	c, _ := IdealConstellation(Format16QAM)
	r := rng.New(2)
	syms := c.Received(r, 2000, 40) // essentially noiseless
	for _, s := range syms {
		p := c.Nearest(s)
		di, dq := s.I-p.I, s.Q-p.Q
		if math.Sqrt(di*di+dq*dq) > 0.05 {
			t.Fatalf("high-SNR symbol far from ideal point: %+v", s)
		}
	}
}

func TestEVMDecreasesWithSNR(t *testing.T) {
	c, _ := IdealConstellation(FormatQPSK)
	r := rng.New(3)
	evm20 := c.EVM(c.Received(r, 5000, 20))
	evm10 := c.EVM(c.Received(r, 5000, 10))
	if evm20 >= evm10 {
		t.Fatalf("EVM(20 dB)=%v not below EVM(10 dB)=%v", evm20, evm10)
	}
}

func TestEVMMatchesSNR(t *testing.T) {
	// For QPSK at comfortably high SNR decision errors vanish, so the
	// decision-directed EVM equals the channel EVM: EVM ≈ 1/sqrt(SNR).
	c, _ := IdealConstellation(FormatQPSK)
	r := rng.New(4)
	const snrdB = 18.0
	evm := c.EVM(c.Received(r, 20000, snrdB))
	want := 1 / math.Sqrt(SNRdBToLinear(snrdB))
	if math.Abs(evm-want)/want > 0.05 {
		t.Fatalf("EVM = %v, want ≈ %v", evm, want)
	}
	// And the SNR estimator inverts it.
	est := EstimatedSNRdB(evm)
	if math.Abs(est-snrdB) > 0.5 {
		t.Fatalf("estimated SNR = %v dB, want ≈ %v", est, snrdB)
	}
}

func TestEVMEmptyAndZero(t *testing.T) {
	c, _ := IdealConstellation(FormatQPSK)
	if c.EVM(nil) != 0 {
		t.Fatal("EVM(nil) != 0")
	}
	if !math.IsInf(EstimatedSNRdB(0), 1) {
		t.Fatal("EstimatedSNRdB(0) should be +Inf")
	}
}

func TestNearestIsIdentityOnIdealPoints(t *testing.T) {
	for _, f := range []Format{FormatBPSK, FormatQPSK, Format8QAM, Format16QAM} {
		c, _ := IdealConstellation(f)
		for _, p := range c.Points {
			if got := c.Nearest(p); got != p {
				t.Errorf("%v: Nearest(%+v) = %+v", f, p, got)
			}
		}
	}
}

func TestTheoreticalSERMonotoneInSNR(t *testing.T) {
	for _, f := range []Format{FormatBPSK, FormatQPSK, Format8QAM, Format16QAM, FormatHybridQPSK8QAM, FormatHybrid8QAM16QAM} {
		prev := 1.1
		for snr := 0.0; snr <= 25; snr += 1 {
			ser := TheoreticalSER(f, snr)
			if ser < 0 || ser > 1 {
				t.Fatalf("%v SER(%v) = %v out of range", f, snr, ser)
			}
			if ser > prev+1e-12 {
				t.Fatalf("%v SER not monotone at %v dB", f, snr)
			}
			prev = ser
		}
	}
}

func TestTheoreticalSEROrderingAcrossFormats(t *testing.T) {
	// At a fixed moderate SNR, denser constellations must have higher SER.
	const snr = 12.0
	serQPSK := TheoreticalSER(FormatQPSK, snr)
	ser16 := TheoreticalSER(Format16QAM, snr)
	if serQPSK >= ser16 {
		t.Fatalf("QPSK SER %v not below 16QAM SER %v at %v dB", serQPSK, ser16, snr)
	}
}

func TestTheoreticalSERUnknownFormat(t *testing.T) {
	if TheoreticalSER(FormatNone, 30) != 1 {
		t.Fatal("unknown format should have SER 1")
	}
}

func TestEmpiricalSERMatchesTheoryQPSK(t *testing.T) {
	// Monte-Carlo SER of synthesized QPSK symbols should track the
	// closed form at an SNR where errors are common enough to count.
	c, _ := IdealConstellation(FormatQPSK)
	r := rng.New(9)
	const snrdB = 7.0
	const n = 100000
	errors := 0
	// Explicit transmit/decide loop so the transmitted symbol is known.
	sigma := math.Sqrt(1 / SNRdBToLinear(snrdB) / 2)
	for i := 0; i < n; i++ {
		tx := c.Points[r.Intn(len(c.Points))]
		rx := Symbol{I: tx.I + sigma*r.NormFloat64(), Q: tx.Q + sigma*r.NormFloat64()}
		if c.Nearest(rx) != tx {
			errors++
		}
	}
	got := float64(errors) / n
	want := TheoreticalSER(FormatQPSK, snrdB)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("empirical QPSK SER = %v, theory %v", got, want)
	}
}

func BenchmarkReceived16QAM(b *testing.B) {
	c, _ := IdealConstellation(Format16QAM)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Received(r, 1000, 15)
	}
}
