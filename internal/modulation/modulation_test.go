package modulation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultLadderAnchors(t *testing.T) {
	l := Default()
	// The two published anchors from the paper.
	th100, err := l.ThresholdFor(100)
	if err != nil || th100 != 6.5 {
		t.Fatalf("100 Gbps threshold = %v (err %v), want 6.5 dB", th100, err)
	}
	th50, err := l.ThresholdFor(50)
	if err != nil || th50 != 3.0 {
		t.Fatalf("50 Gbps threshold = %v (err %v), want 3.0 dB", th50, err)
	}
}

func TestDefaultLadderShape(t *testing.T) {
	l := Default()
	caps := l.Capacities()
	want := []Gbps{50, 100, 125, 150, 175, 200}
	if len(caps) != len(want) {
		t.Fatalf("ladder has %d rungs", len(caps))
	}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("rung %d = %v, want %v", i, caps[i], want[i])
		}
	}
	if l.Max().Capacity != 200 || l.Min().Capacity != 50 {
		t.Fatal("min/max wrong")
	}
}

func TestLadderValidation(t *testing.T) {
	cases := []struct {
		name  string
		modes []Mode
	}{
		{"empty", nil},
		{"non-positive capacity", []Mode{{Capacity: 0, MinSNRdB: 1}}},
		{"duplicate capacity", []Mode{{Capacity: 100, MinSNRdB: 1}, {Capacity: 100, MinSNRdB: 2}}},
		{"non-increasing threshold", []Mode{{Capacity: 100, MinSNRdB: 5}, {Capacity: 200, MinSNRdB: 5}}},
		{"inverted threshold", []Mode{{Capacity: 100, MinSNRdB: 5}, {Capacity: 200, MinSNRdB: 4}}},
	}
	for _, tc := range cases {
		if _, err := NewLadder(tc.modes); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewLadderSortsInput(t *testing.T) {
	l, err := NewLadder([]Mode{
		{Capacity: 200, MinSNRdB: 15},
		{Capacity: 100, MinSNRdB: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Min().Capacity != 100 {
		t.Fatalf("min = %v", l.Min().Capacity)
	}
}

func TestFeasibleCapacity(t *testing.T) {
	l := Default()
	cases := []struct {
		snr  float64
		want Gbps
		ok   bool
	}{
		{2.9, 0, false},
		{3.0, 50, true},
		{6.4, 50, true},
		{6.5, 100, true},
		{8.5, 125, true},
		{10.5, 150, true},
		{12.9, 150, true},
		{13.0, 175, true},
		{15.5, 200, true},
		{25, 200, true},
	}
	for _, tc := range cases {
		m, ok := l.FeasibleCapacity(tc.snr)
		if ok != tc.ok {
			t.Errorf("snr=%v: ok=%v, want %v", tc.snr, ok, tc.ok)
			continue
		}
		if ok && m.Capacity != tc.want {
			t.Errorf("snr=%v: capacity=%v, want %v", tc.snr, m.Capacity, tc.want)
		}
	}
}

// Property: feasible capacity is monotone non-decreasing in SNR.
func TestFeasibleCapacityMonotone(t *testing.T) {
	l := Default()
	if err := quick.Check(func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 30)
		b = math.Mod(math.Abs(b), 30)
		if a > b {
			a, b = b, a
		}
		ma, okA := l.FeasibleCapacity(a)
		mb, okB := l.FeasibleCapacity(b)
		if okA && !okB {
			return false
		}
		if okA && okB && mb.Capacity < ma.Capacity {
			return false
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextUpDown(t *testing.T) {
	l := Default()
	if m, ok := l.NextUp(100); !ok || m.Capacity != 125 {
		t.Fatalf("NextUp(100) = %v, %v", m.Capacity, ok)
	}
	if _, ok := l.NextUp(200); ok {
		t.Fatal("NextUp(200) should be false")
	}
	if m, ok := l.NextDown(100); !ok || m.Capacity != 50 {
		t.Fatalf("NextDown(100) = %v, %v", m.Capacity, ok)
	}
	if _, ok := l.NextDown(50); ok {
		t.Fatal("NextDown(50) should be false")
	}
	// Between rungs.
	if m, ok := l.NextUp(110); !ok || m.Capacity != 125 {
		t.Fatalf("NextUp(110) = %v, %v", m.Capacity, ok)
	}
}

func TestThresholdForUnknown(t *testing.T) {
	if _, err := Default().ThresholdFor(333); err == nil {
		t.Fatal("expected error for unknown capacity")
	}
}

func TestModesReturnsCopy(t *testing.T) {
	l := Default()
	m := l.Modes()
	m[0].Capacity = 999
	if l.Min().Capacity == 999 {
		t.Fatal("Modes leaked internal state")
	}
}

func TestFormatBitsPerSymbol(t *testing.T) {
	cases := map[Format]float64{
		FormatBPSK: 1, FormatQPSK: 2, FormatHybridQPSK8QAM: 2.5,
		Format8QAM: 3, FormatHybrid8QAM16QAM: 3.5, Format16QAM: 4,
		FormatNone: 0,
	}
	for f, want := range cases {
		if got := f.BitsPerSymbol(); got != want {
			t.Errorf("%v bits/symbol = %v, want %v", f, got, want)
		}
	}
}

func TestFormatStrings(t *testing.T) {
	for _, f := range []Format{FormatNone, FormatBPSK, FormatQPSK, Format8QAM, Format16QAM, FormatHybridQPSK8QAM, FormatHybrid8QAM16QAM} {
		if f.String() == "" {
			t.Errorf("empty string for format %d", int(f))
		}
	}
	if Format(99).String() != "Format(99)" {
		t.Error("unknown format string")
	}
}

func TestLadderFormatProgression(t *testing.T) {
	// Bits per symbol must increase with capacity across the ladder.
	modes := Default().Modes()
	for i := 1; i < len(modes); i++ {
		if modes[i].Format.BitsPerSymbol() <= modes[i-1].Format.BitsPerSymbol() {
			t.Fatalf("bits/symbol not increasing at %v Gbps", modes[i].Capacity)
		}
	}
}

func TestSNRConversionRoundTrip(t *testing.T) {
	if err := quick.Check(func(dbRaw float64) bool {
		db := math.Mod(math.Abs(dbRaw), 40)
		back := SNRLinearToDB(SNRdBToLinear(db))
		return math.Abs(back-db) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
	if SNRdBToLinear(10) != 10 {
		t.Fatal("10 dB should be 10x")
	}
	if math.Abs(SNRdBToLinear(3)-1.995) > 0.01 {
		t.Fatal("3 dB should be ~2x")
	}
}
