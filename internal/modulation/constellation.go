package modulation

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/rng"
)

// Symbol is one received constellation point (in-phase I, quadrature Q).
type Symbol struct {
	I, Q float64
}

// Constellation is the ideal symbol alphabet of a modulation format,
// normalized to unit average power.
type Constellation struct {
	Format Format
	Points []Symbol
}

// IdealConstellation returns the unit-average-power constellation of a
// (non-hybrid) format. Hybrid formats return an error: the testbed
// figure (Fig 5) only shows the three pure formats.
func IdealConstellation(f Format) (Constellation, error) {
	var pts []complex128
	switch f {
	case FormatBPSK:
		pts = []complex128{1, -1}
	case FormatQPSK:
		for _, re := range []float64{-1, 1} {
			for _, im := range []float64{-1, 1} {
				pts = append(pts, complex(re, im))
			}
		}
	case Format8QAM:
		// Star 8QAM: inner QPSK ring plus outer ring rotated 45°,
		// the arrangement coherent transceivers use.
		r1, r2 := 1.0, 1.0+math.Sqrt(3)
		for k := 0; k < 4; k++ {
			theta := float64(k)*math.Pi/2 + math.Pi/4
			pts = append(pts, cmplx.Rect(r1, theta))
		}
		for k := 0; k < 4; k++ {
			theta := float64(k) * math.Pi / 2
			pts = append(pts, cmplx.Rect(r2, theta))
		}
	case Format16QAM:
		for _, re := range []float64{-3, -1, 1, 3} {
			for _, im := range []float64{-3, -1, 1, 3} {
				pts = append(pts, complex(re, im))
			}
		}
	default:
		return Constellation{}, fmt.Errorf("modulation: no ideal constellation for %v", f)
	}
	// Normalize to unit average power.
	var p float64
	for _, c := range pts {
		p += real(c)*real(c) + imag(c)*imag(c)
	}
	scale := math.Sqrt(float64(len(pts)) / p)
	out := make([]Symbol, len(pts))
	for i, c := range pts {
		out[i] = Symbol{I: real(c) * scale, Q: imag(c) * scale}
	}
	return Constellation{Format: f, Points: out}, nil
}

// Received synthesizes n received symbols of the constellation through
// an AWGN channel at the given SNR (dB): each transmitted point is a
// uniformly chosen alphabet symbol plus complex Gaussian noise whose
// variance matches the SNR. This regenerates the scatter in Figure 5.
func (c Constellation) Received(r *rng.Source, n int, snrdB float64) []Symbol {
	if n <= 0 {
		return nil
	}
	// Unit signal power by construction; total noise power 1/SNR splits
	// evenly across the I and Q components.
	sigma := math.Sqrt(1 / SNRdBToLinear(snrdB) / 2)
	out := make([]Symbol, n)
	for i := range out {
		p := c.Points[r.Intn(len(c.Points))]
		out[i] = Symbol{
			I: p.I + sigma*r.NormFloat64(),
			Q: p.Q + sigma*r.NormFloat64(),
		}
	}
	return out
}

// EVM computes the root-mean-square error vector magnitude of received
// symbols against the constellation, as a fraction of RMS signal power.
// Each received symbol is matched to its nearest ideal point (blind
// decision-directed EVM, what a transceiver DSP reports).
func (c Constellation) EVM(received []Symbol) float64 {
	if len(received) == 0 {
		return 0
	}
	var errPow, sigPow float64
	for _, s := range received {
		p := c.Nearest(s)
		di, dq := s.I-p.I, s.Q-p.Q
		errPow += di*di + dq*dq
		sigPow += p.I*p.I + p.Q*p.Q
	}
	if sigPow == 0 {
		return 0
	}
	return math.Sqrt(errPow / sigPow)
}

// Nearest returns the ideal constellation point closest to s.
func (c Constellation) Nearest(s Symbol) Symbol {
	best := c.Points[0]
	bestD := math.Inf(1)
	for _, p := range c.Points {
		di, dq := s.I-p.I, s.Q-p.Q
		if d := di*di + dq*dq; d < bestD {
			bestD = d
			best = p
		}
	}
	return best
}

// EstimatedSNRdB inverts EVM back into an SNR estimate: for
// decision-directed EVM in AWGN, SNR ≈ 1/EVM².
func EstimatedSNRdB(evm float64) float64 {
	if evm <= 0 {
		return math.Inf(1)
	}
	return SNRLinearToDB(1 / (evm * evm))
}

// qFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func qFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// TheoreticalSER returns the (approximate) symbol error rate of the
// format over AWGN at the given SNR (dB), using the standard union-bound
// style approximations for M-PSK/M-QAM. Hybrid formats average their
// constituents. Used by tests and by the BVT model to decide whether a
// mode is sustainable.
func TheoreticalSER(f Format, snrdB float64) float64 {
	snr := SNRdBToLinear(snrdB)
	switch f {
	case FormatBPSK:
		return qFunc(math.Sqrt(2 * snr))
	case FormatQPSK:
		p := qFunc(math.Sqrt(snr))
		return 2*p - p*p
	case Format8QAM:
		// Approximation for star-8QAM via nearest-neighbour distance.
		return 2 * qFunc(math.Sqrt(snr*0.6))
	case Format16QAM:
		p := 1.5 * qFunc(math.Sqrt(snr/5))
		ser := 1 - (1-p)*(1-p)
		if ser < 0 {
			ser = 0
		}
		return ser
	case FormatHybridQPSK8QAM:
		return 0.5 * (TheoreticalSER(FormatQPSK, snrdB) + TheoreticalSER(Format8QAM, snrdB))
	case FormatHybrid8QAM16QAM:
		return 0.5 * (TheoreticalSER(Format8QAM, snrdB) + TheoreticalSER(Format16QAM, snrdB))
	default:
		return 1
	}
}
