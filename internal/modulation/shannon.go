package modulation

import (
	"fmt"
	"math"
)

// ShannonParams derives SNR thresholds from first principles instead
// of taking them as hardware constants: a coherent transceiver running
// at SymbolRateGBd on two polarizations with FEC of the given code
// rate needs a per-polarization spectral efficiency of
//
//	SE = capacity / (2 · SymbolRateGBd · CodeRate)
//
// bits/symbol, and an AWGN channel supports SE at SNR ≥ 2^SE − 1
// (Shannon), plus an implementation gap for real DSPs and FECs.
//
// This is the cross-check for DESIGN.md's calibration note: the
// paper's published anchors (6.5 dB → 100 G, 3.0 dB → 50 G) should be
// reproducible from plausible hardware parameters, and the unpublished
// rungs should land near our assumed ladder.
type ShannonParams struct {
	// SymbolRateGBd is the baud rate (per polarization). Flex-rate
	// 100–200 G transceivers of the paper's era ran ≈ 32 GBd.
	SymbolRateGBd float64
	// CodeRate is the FEC code rate (net/gross), typically ≈ 0.8 for
	// 25% overhead SD-FEC.
	CodeRate float64
	// GapdB is the implementation gap to Shannon capacity.
	GapdB float64
}

// DefaultShannonParams matches 2017-era coherent hardware.
func DefaultShannonParams() ShannonParams {
	return ShannonParams{SymbolRateGBd: 32, CodeRate: 0.8, GapdB: 2.0}
}

// Validate reports whether the parameters are usable.
func (p ShannonParams) Validate() error {
	switch {
	case p.SymbolRateGBd <= 0:
		return fmt.Errorf("modulation: non-positive symbol rate")
	case p.CodeRate <= 0 || p.CodeRate > 1:
		return fmt.Errorf("modulation: code rate %v outside (0,1]", p.CodeRate)
	case p.GapdB < 0:
		return fmt.Errorf("modulation: negative implementation gap")
	}
	return nil
}

// RequiredSNRdB returns the SNR needed to carry the given capacity.
func (p ShannonParams) RequiredSNRdB(c Gbps) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if c <= 0 {
		return 0, fmt.Errorf("modulation: non-positive capacity %v", c)
	}
	se := float64(c) / (2 * p.SymbolRateGBd * p.CodeRate)
	snrLin := math.Pow(2, se) - 1
	return SNRLinearToDB(snrLin) + p.GapdB, nil
}

// ShannonLadder builds a ladder for the standard capacity set with
// thresholds derived from the parameters. Formats are assigned by the
// nearest standard constellation for the spectral efficiency.
func ShannonLadder(p ShannonParams) (*Ladder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	caps := []Gbps{50, 100, 125, 150, 175, 200}
	formats := []Format{
		FormatBPSK, FormatQPSK, FormatHybridQPSK8QAM,
		Format8QAM, FormatHybrid8QAM16QAM, Format16QAM,
	}
	modes := make([]Mode, len(caps))
	for i, c := range caps {
		th, err := p.RequiredSNRdB(c)
		if err != nil {
			return nil, err
		}
		modes[i] = Mode{Capacity: c, Format: formats[i], MinSNRdB: th}
	}
	return NewLadder(modes)
}
