package core

import (
	"fmt"

	"repro/internal/graph"
)

// FakeLabel marks fake edges in the augmented graph so dumps and
// debuggers can tell them apart. Translation does not depend on it.
const FakeLabel = "fake"

// Augmentation is the output of Algorithm 1: the augmented topology G′
// plus the bookkeeping needed to translate TE output back into capacity
// decisions (step 3 of the construction under Theorem 1).
type Augmentation struct {
	// Graph is G′: every real edge of G (same IDs, penalties applied)
	// followed by one fake edge per upgradable link.
	Graph *graph.Graph
	// FakeOf maps a fake edge in G′ to the physical edge it upgrades.
	FakeOf map[graph.EdgeID]graph.EdgeID
	// FakeFor is the inverse: physical edge → its fake edge in G′.
	FakeFor map[graph.EdgeID]graph.EdgeID
	// Topology is the input it was built from.
	Topology *Topology
	// gadgets records the extra edges introduced by UnsplittableGadget,
	// keyed by the physical edge they replace.
	gadgets map[graph.EdgeID]gadgetInfo
}

// gadgetInfo tracks the inner edges of one Figure-8 gadget.
type gadgetInfo struct {
	// midReal is the base-capacity middle edge A′→B′; its flow belongs
	// to the physical link during translation.
	midReal graph.EdgeID
	// inner is the full-capacity fake middle edge.
	inner graph.EdgeID
}

// Augment implements Algorithm 1 ("Graph augmentation procedure"):
//
//	foreach e = (v,w) ∈ E:
//	    P′(e) = 0                       // or another penalty function
//	    if U[v,w] > 0:
//	        E′ = E′ ∪ {(v,w, U[v,w], P[v,w])}
//	return G′⟨V, E′ ∪ E, P′⟩
//
// Real edges keep their IDs (the fake edges are appended after them),
// so a flow result on G′ indexes real edges directly.
func Augment(t *Topology, penalty PenaltyFunc) (*Augmentation, error) {
	if t == nil || t.G == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if penalty == nil {
		penalty = PenaltyFromMatrix
	}
	a := &Augmentation{
		Graph:    t.G.Clone(),
		FakeOf:   make(map[graph.EdgeID]graph.EdgeID),
		FakeFor:  make(map[graph.EdgeID]graph.EdgeID),
		Topology: t,
	}
	// First pass: set real-edge costs via the penalty function.
	for _, e := range t.G.Edges() {
		up := t.Upgrades[e.ID] // zero Upgrade if absent
		realCost, _ := penalty(e, up, t.Traffic[e.ID])
		a.Graph.SetCost(e.ID, realCost)
	}
	// Second pass: append fake edges for upgradable links, in edge-ID
	// order for determinism.
	for _, e := range t.G.Edges() {
		up, ok := t.Upgrades[e.ID]
		if !ok || up.ExtraCapacity <= 0 {
			continue
		}
		_, fakeCost := penalty(e, up, t.Traffic[e.ID])
		fakeID := a.Graph.AddEdge(graph.Edge{
			From:     e.From,
			To:       e.To,
			Capacity: up.ExtraCapacity,
			Cost:     fakeCost,
			Weight:   e.Weight,
			Label:    FakeLabel,
		})
		a.FakeOf[fakeID] = e.ID
		a.FakeFor[e.ID] = fakeID
	}
	return a, nil
}

// RemoveInfeasible drops the fake edges of physical links whose SNR no
// longer supports their upgrade (§4.2: "Our proposed abstraction handles
// such events by removing the corresponding fake edges from the
// augmented topology"). keep reports whether a physical edge's upgrade
// is still feasible. The augmentation is modified in place by zeroing
// the fake edge's capacity — TE controllers treat a removed edge and a
// zero-capacity edge identically, and IDs stay stable.
func (a *Augmentation) RemoveInfeasible(keep func(realEdge graph.EdgeID) bool) int {
	removed := 0
	for fakeID, realID := range a.FakeOf {
		if !keep(realID) {
			if a.Graph.Edge(fakeID).Capacity > 0 {
				a.Graph.SetCapacity(fakeID, 0)
				removed++
			}
		}
	}
	return removed
}

// UnsplittableGadget rewrites one upgradable physical link using the
// intermediate-vertex construction of Figure 8, so that a single
// unsplittable flow of (base + extra) capacity can traverse it. The
// plain augmentation offers two parallel edges (base and extra), which
// an unsplittable flow cannot combine; the gadget serializes them:
//
//	A ──(B+U, 0)──> A′ ──(B, 0)──┬──> B′ ──(B+U, 0)──> B
//	                └─(B+U, P)───┘
//
// where B is the base capacity, U the extra, and P the penalty. The
// outer edges cap the total at B+U while the inner fake edge alone can
// carry a full B+U unsplittable flow once the upgrade is paid for.
//
// The original edge's capacity is set to 0 (it is superseded); new
// nodes and edges are appended. Returns the inner fake edge's ID, whose
// flow signals the upgrade in translation.
func (a *Augmentation) UnsplittableGadget(realID graph.EdgeID) (graph.EdgeID, error) {
	up, ok := a.Topology.Upgrades[realID]
	if !ok {
		return graph.NoEdge, fmt.Errorf("core: edge %d has no upgrade to gadgetize", int(realID))
	}
	if _, hasFake := a.FakeFor[realID]; !hasFake {
		return graph.NoEdge, fmt.Errorf("core: edge %d has no fake edge", int(realID))
	}
	if _, done := a.gadgets[realID]; done {
		return graph.NoEdge, fmt.Errorf("core: edge %d already gadgetized", int(realID))
	}
	e := a.Topology.G.Edge(realID)
	base := e.Capacity
	full := base + up.ExtraCapacity

	aPrime := a.Graph.AddNode(a.Graph.NodeName(e.From) + "'")
	bPrime := a.Graph.AddNode(a.Graph.NodeName(e.To) + "'")

	// Disable the plain real and fake parallel edges.
	oldFake := a.FakeFor[realID]
	a.Graph.SetCapacity(realID, 0)
	a.Graph.SetCapacity(oldFake, 0)
	delete(a.FakeOf, oldFake)
	delete(a.FakeFor, realID)

	a.Graph.AddEdge(graph.Edge{From: e.From, To: aPrime, Capacity: full, Weight: 0})
	mid := a.Graph.AddEdge(graph.Edge{From: aPrime, To: bPrime, Capacity: base, Weight: e.Weight})
	inner := a.Graph.AddEdge(graph.Edge{
		From: aPrime, To: bPrime, Capacity: full,
		Cost: a.Graph.Edge(oldFake).Cost, Weight: e.Weight, Label: FakeLabel,
	})
	a.Graph.AddEdge(graph.Edge{From: bPrime, To: e.To, Capacity: full, Weight: 0})

	a.FakeOf[inner] = realID
	a.FakeFor[realID] = inner
	if a.gadgets == nil {
		a.gadgets = make(map[graph.EdgeID]gadgetInfo)
	}
	a.gadgets[realID] = gadgetInfo{midReal: mid, inner: inner}
	return inner, nil
}
