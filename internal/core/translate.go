package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// CapacityChange is one physical-link upgrade instructed by the TE
// output (step 3a of the construction: "decisions about which link
// capacities should be modified").
type CapacityChange struct {
	// Edge is the physical edge in the original topology.
	Edge graph.EdgeID
	// OldCapacity and NewCapacity are the configured capacities before
	// and after the modulation change.
	OldCapacity, NewCapacity float64
	// Penalty is the activation penalty P[v,w] from the upgrade matrix.
	Penalty float64
	// FlowOnFake is how much of the TE flow actually rides the upgrade.
	FlowOnFake float64
}

// Decision is the translated TE output: which links to upgrade and the
// flow assignment expressed on the *physical* topology (step 3b: "the
// flow-paths of the current traffic demands").
type Decision struct {
	// Changes lists the capacity upgrades, ascending by edge ID.
	Changes []CapacityChange
	// EdgeFlow is the combined (real + fake) flow per physical edge,
	// indexed by the original topology's edge IDs.
	EdgeFlow []float64
	// Value is the total flow shipped.
	Value float64
	// PenaltyCost is the TE-charged cost of the assignment on G′.
	PenaltyCost float64
}

// Translate converts a flow result computed on the augmented graph G′
// back into physical-topology terms. The TE algorithm never saw the
// dynamic capacities; this is where its output becomes (a) modulation
// changes and (b) flows on real links.
func (a *Augmentation) Translate(res graph.FlowResult) (*Decision, error) {
	if len(res.EdgeFlow) != a.Graph.NumEdges() {
		return nil, fmt.Errorf("core: flow result has %d edges, augmented graph has %d",
			len(res.EdgeFlow), a.Graph.NumEdges())
	}
	t := a.Topology
	d := &Decision{
		EdgeFlow:    make([]float64, t.G.NumEdges()),
		Value:       res.Value,
		PenaltyCost: res.Cost,
	}
	// Real edges share IDs with the original topology (gadgetized ones
	// have zero capacity in G′ and therefore zero flow here).
	for id := 0; id < t.G.NumEdges(); id++ {
		d.EdgeFlow[id] = res.EdgeFlow[id]
	}
	// Gadget middle edges carry the base-capacity share of their link.
	for realID, gi := range a.gadgets {
		d.EdgeFlow[realID] += res.EdgeFlow[gi.midReal]
	}
	// Fake-edge flow maps onto the physical link and, if positive,
	// instructs an upgrade.
	for fakeID, realID := range a.FakeOf {
		f := res.EdgeFlow[fakeID]
		if f <= graph.Eps {
			continue
		}
		d.EdgeFlow[realID] += f
		up := t.Upgrades[realID]
		e := t.G.Edge(realID)
		d.Changes = append(d.Changes, CapacityChange{
			Edge:        realID,
			OldCapacity: e.Capacity,
			NewCapacity: e.Capacity + up.ExtraCapacity,
			Penalty:     up.Penalty,
			FlowOnFake:  f,
		})
	}
	sort.Slice(d.Changes, func(i, j int) bool { return d.Changes[i].Edge < d.Changes[j].Edge })
	return d, nil
}

// ApplyTo returns a copy of the physical graph with the decision's
// capacity changes applied — the topology the network converges to
// after the modulation changes complete.
func (d *Decision) ApplyTo(g *graph.Graph) *graph.Graph {
	out := g.Clone()
	for _, ch := range d.Changes {
		out.SetCapacity(ch.Edge, ch.NewCapacity)
	}
	return out
}

// TotalActivationPenalty sums the activation penalties of all changes
// (the operator-facing disruption estimate, as opposed to the TE's
// per-unit PenaltyCost).
func (d *Decision) TotalActivationPenalty() float64 {
	var p float64
	for _, ch := range d.Changes {
		p += ch.Penalty
	}
	return p
}

// PathFlows decomposes the decision's physical edge flow into paths
// from src to dst on the upgraded topology — what a tunnel-based TE
// controller would program.
func (d *Decision) PathFlows(t *Topology, src, dst graph.NodeID) ([]graph.PathFlow, error) {
	g := d.ApplyTo(t.G)
	return g.DecomposeFlow(src, dst, d.EdgeFlow)
}

// MinimizeActivations post-processes a min-cost max-flow result on the
// augmented graph, greedily dropping activated fake edges whose traffic
// can be re-routed without losing flow value or increasing cost. This
// realizes Figure 7b's "few increases" objective even when per-unit
// penalties tie (the fixed-charge version of the problem is NP-hard, so
// a greedy pass is the practical choice). It returns a flow result on
// the same augmented graph.
func (a *Augmentation) MinimizeActivations(src, dst graph.NodeID, res graph.FlowResult) (graph.FlowResult, error) {
	if len(res.EdgeFlow) != a.Graph.NumEdges() {
		return graph.FlowResult{}, fmt.Errorf("core: flow result size mismatch")
	}
	type activation struct {
		fake graph.EdgeID
		flow float64
	}
	current := res
	disabled := make(map[graph.EdgeID]bool)
	for {
		var acts []activation
		for fakeID := range a.FakeOf {
			if disabled[fakeID] {
				continue
			}
			if f := current.EdgeFlow[fakeID]; f > graph.Eps {
				acts = append(acts, activation{fake: fakeID, flow: f})
			}
		}
		// Try the least-used activation first.
		sort.Slice(acts, func(i, j int) bool {
			if acts[i].flow != acts[j].flow { //nolint:nofloateq // comparator tie-break: tolerance would break strict weak ordering
				return acts[i].flow < acts[j].flow
			}
			return acts[i].fake < acts[j].fake
		})
		improved := false
		for _, act := range acts {
			trial := a.Graph.Clone()
			for id := range disabled {
				trial.SetCapacity(id, 0)
			}
			trial.SetCapacity(act.fake, 0)
			alt, err := trial.MinCostFlow(src, dst, math.Inf(1))
			if err != nil {
				return graph.FlowResult{}, err
			}
			if alt.Value+graph.Eps >= current.Value && alt.Cost <= current.Cost+graph.Eps {
				disabled[act.fake] = true
				current = alt
				improved = true
				break
			}
		}
		if !improved {
			return current, nil
		}
	}
}
