package core

import (
	"fmt"

	"repro/internal/graph"
)

// Augmenter is the warm-start counterpart of Augment: it builds the
// augmented graph G′ once, with one fake edge per real edge, and then
// refreshes capacities/costs in place each round instead of re-cloning
// the topology. Links without upgrade headroom keep their fake edge at
// capacity 0 — solvers skip zero-capacity edges everywhere (Bellman–
// Ford, Dijkstra, decomposition all test Capacity > Eps), so the
// stable-structure graph produces bit-identical flows to the compact
// per-round Augment, while the TE hot path gets a structurally stable
// graph it can keep solver state for.
//
// The fake edge of real edge i always has ID NumRealEdges + i, which is
// also ascending real-ID order — the order compact augmentation appends
// fakes in — so per-node arc orderings (and therefore tie-breaks) match
// Augment exactly.
//
// Gadgets (UnsplittableGadget) are not supported; use Augment for those.
// Not safe for concurrent use.
type Augmenter struct {
	// G is the augmented graph G′. Callers run TE on it; they must not
	// modify it structurally.
	G *graph.Graph
	t *Topology
	p PenaltyFunc
	// nReal is the physical edge count the augmenter was built for.
	nReal int
	// work accumulates exact unit counts since the last TakeWork call.
	work WorkStats
}

// WorkStats counts the augmentation layer's exact work units: edges
// refreshed into G′, fake-edge scans while translating a flow back to
// capacity orders, and attribution records emitted. Like
// graph.SolveStats these are plain integers derived only from structure
// and call order — never from timing — so they are byte-identical
// across runs and worker counts.
type WorkStats struct {
	RefreshEdges      int
	TranslateScans    int
	AttributionChecks int
}

// Add accumulates another accounting period's counts.
func (w *WorkStats) Add(o WorkStats) {
	w.RefreshEdges += o.RefreshEdges
	w.TranslateScans += o.TranslateScans
	w.AttributionChecks += o.AttributionChecks
}

// TakeWork returns the work accumulated since the previous TakeWork
// (or construction) and resets the accumulator — the per-round delta
// the simulation publishes as rwc_work_augmenter_* counters.
func (a *Augmenter) TakeWork() WorkStats {
	w := a.work
	a.work = WorkStats{}
	return w
}

// NewAugmenter builds the stable augmented graph for t. A nil penalty
// defaults to PenaltyFromMatrix, matching Augment.
func NewAugmenter(t *Topology, penalty PenaltyFunc) (*Augmenter, error) {
	if t == nil || t.G == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if penalty == nil {
		penalty = PenaltyFromMatrix
	}
	a := &Augmenter{
		G:     t.G.Clone(),
		t:     t,
		p:     penalty,
		nReal: t.G.NumEdges(),
	}
	// Append every fake edge up front, capacity 0 (Refresh opens the
	// ones with headroom). Appending in real-ID order fixes fake IDs at
	// nReal+i.
	for i := 0; i < a.nReal; i++ {
		e := t.G.Edge(graph.EdgeID(i))
		a.G.AddEdge(graph.Edge{
			From:   e.From,
			To:     e.To,
			Weight: e.Weight,
			Label:  FakeLabel,
		})
	}
	if err := a.Refresh(); err != nil {
		return nil, err
	}
	// Construction is not accounted work: the warm path builds once and
	// the cold path rebuilds every round, and the two must report
	// identical per-round work (the warm-vs-cold equivalence invariant).
	a.work = WorkStats{}
	return a, nil
}

// FakeID returns the fake edge in G′ for physical edge id.
func (a *Augmenter) FakeID(id graph.EdgeID) graph.EdgeID {
	return graph.EdgeID(a.nReal + int(id))
}

// NumRealEdges returns the physical edge count.
func (a *Augmenter) NumRealEdges() int { return a.nReal }

// Refresh re-reads the topology — current capacities, Upgrades, and
// Traffic — into G′: real edges get the topology's capacity and the
// penalty function's real cost; fake edges get ⟨ExtraCapacity, fake
// cost⟩ when the link has headroom, ⟨0, 0⟩ otherwise. Call it after
// mutating the topology, before allocating.
func (a *Augmenter) Refresh() error {
	t := a.t
	if t.G.NumEdges() != a.nReal {
		return fmt.Errorf("core: topology grew from %d to %d edges; rebuild the augmenter",
			a.nReal, t.G.NumEdges())
	}
	a.work.RefreshEdges += a.nReal
	for i := 0; i < a.nReal; i++ {
		id := graph.EdgeID(i)
		e := t.G.Edge(id)
		up := t.Upgrades[id] // zero Upgrade if absent
		realCost, fakeCost := a.p(e, up, t.Traffic[id])
		a.G.SetCapacity(id, e.Capacity)
		a.G.SetCost(id, realCost)
		fakeID := a.FakeID(id)
		if up.ExtraCapacity > 0 {
			a.G.SetCapacity(fakeID, up.ExtraCapacity)
			a.G.SetCost(fakeID, fakeCost)
		} else {
			a.G.SetCapacity(fakeID, 0)
			a.G.SetCost(fakeID, 0)
		}
	}
	return nil
}

// TranslateInto is Translate with caller-owned storage: it fills d,
// reusing d.EdgeFlow and d.Changes backing arrays, and allocates
// nothing once those have grown to steady-state size. The result is
// exactly what Augmentation.Translate would return for the same flow
// (Changes come out ascending by edge ID without sorting, because fakes
// are scanned in real-ID order).
func (a *Augmenter) TranslateInto(d *Decision, res graph.FlowResult) error {
	if len(res.EdgeFlow) != a.G.NumEdges() {
		return fmt.Errorf("core: flow result has %d edges, augmented graph has %d",
			len(res.EdgeFlow), a.G.NumEdges())
	}
	t := a.t
	d.Value = res.Value
	d.PenaltyCost = res.Cost
	if cap(d.EdgeFlow) < a.nReal {
		d.EdgeFlow = make([]float64, a.nReal)
	}
	d.EdgeFlow = d.EdgeFlow[:a.nReal]
	copy(d.EdgeFlow, res.EdgeFlow[:a.nReal])
	d.Changes = d.Changes[:0]
	a.work.TranslateScans += a.nReal
	for i := 0; i < a.nReal; i++ {
		realID := graph.EdgeID(i)
		f := res.EdgeFlow[a.FakeID(realID)]
		if f <= graph.Eps {
			continue
		}
		d.EdgeFlow[realID] += f
		up := t.Upgrades[realID]
		e := t.G.Edge(realID)
		d.Changes = append(d.Changes, CapacityChange{
			Edge:        realID,
			OldCapacity: e.Capacity,
			NewCapacity: e.Capacity + up.ExtraCapacity,
			Penalty:     up.Penalty,
			FlowOnFake:  f,
		})
	}
	return nil
}

// AttributionInto is Augmentation.Attribution with a reusable buffer:
// it appends one FakeAttribution per upgradable link (ExtraCapacity >
// 0, the links compact augmentation would have created fakes for) into
// dst[:0] and returns it, ascending by real edge ID. Zero-headroom
// links are omitted so flight-recorder verdicts match the compact path.
func (a *Augmenter) AttributionInto(dst []FakeAttribution, edgeFlow []float64) []FakeAttribution {
	res := graph.FlowResult{EdgeFlow: edgeFlow}
	out := dst[:0]
	a.work.AttributionChecks += a.nReal
	for i := 0; i < a.nReal; i++ {
		realID := graph.EdgeID(i)
		up, ok := a.t.Upgrades[realID]
		if !ok || up.ExtraCapacity <= 0 {
			continue
		}
		fakeID := a.FakeID(realID)
		fe := a.G.Edge(fakeID)
		f := res.FlowOn(fakeID)
		out = append(out, FakeAttribution{
			Real:         realID,
			Fake:         fakeID,
			FakeCapacity: fe.Capacity,
			FakePenalty:  fe.Cost,
			FlowOnFake:   f,
			Residual:     fe.Capacity - f,
			Selected:     f > graph.Eps,
		})
	}
	return out
}
