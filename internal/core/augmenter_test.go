package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/te"
)

// randomUpgradeTopology builds a topology with randomized capacities,
// upgrades (including absent and zero-headroom entries), and traffic.
func randomUpgradeTopology(r *rng.Source, nNodes, nEdges int) *Topology {
	g := graph.New()
	for i := 0; i < nNodes; i++ {
		g.AddNode("")
	}
	for i := 0; i < nEdges; i++ {
		from := graph.NodeID(r.Intn(nNodes))
		to := graph.NodeID(r.Intn(nNodes - 1))
		if to >= from {
			to++
		}
		g.AddEdge(graph.Edge{
			From:     from,
			To:       to,
			Capacity: r.Uniform(0, 40),
			Weight:   r.Uniform(1, 10),
		})
	}
	t := NewTopology(g)
	for i := 0; i < nEdges; i++ {
		id := graph.EdgeID(i)
		switch r.Intn(3) {
		case 0: // no upgrade entry
		case 1: // headroom
			if err := t.SetUpgrade(id, r.Uniform(1, 30), r.Uniform(0, 5)); err != nil {
				panic(err)
			}
		case 2: // explicit zero headroom (deletes)
			if err := t.SetUpgrade(id, 0, 0); err != nil {
				panic(err)
			}
		}
		if err := t.SetTraffic(id, r.Uniform(0, 20)); err != nil {
			panic(err)
		}
	}
	return t
}

// perturb re-rolls capacities, upgrades, and traffic in place,
// preserving graph structure — one simulated TE round's worth of churn.
func perturb(r *rng.Source, t *Topology) {
	for i := 0; i < t.G.NumEdges(); i++ {
		id := graph.EdgeID(i)
		t.G.SetCapacity(id, r.Uniform(0, 40))
		switch r.Intn(3) {
		case 0:
			if err := t.SetUpgrade(id, r.Uniform(1, 30), r.Uniform(0, 5)); err != nil {
				panic(err)
			}
		case 1:
			if err := t.SetUpgrade(id, 0, 0); err != nil {
				panic(err)
			}
		}
		if err := t.SetTraffic(id, r.Uniform(0, 20)); err != nil {
			panic(err)
		}
	}
}

// TestAugmenterMatchesAugment drives randomized topologies through many
// perturbation rounds and checks that the warm Augmenter pipeline
// (Refresh → solve → TranslateInto/AttributionInto) is bit-identical to
// the compact per-round pipeline (Augment → solve → Translate →
// Attribution) — same decisions, flows, costs, and attributions.
func TestAugmenterMatchesAugment(t *testing.T) {
	r := rng.New(0xA06)
	for trial := 0; trial < 20; trial++ {
		topo := randomUpgradeTopology(r, 8, 24)
		warm, err := NewAugmenter(topo, PenaltyTrafficProportional)
		if err != nil {
			t.Fatalf("trial %d: NewAugmenter: %v", trial, err)
		}
		warmTE := te.NewWarm(te.Greedy{})
		var dec Decision
		var att []FakeAttribution
		for round := 0; round < 8; round++ {
			if round > 0 {
				perturb(r, topo)
			}
			demands := []te.Demand{
				{Src: 0, Dst: graph.NodeID(1 + r.Intn(7)), Volume: r.Uniform(5, 60)},
				{Src: graph.NodeID(r.Intn(4)), Dst: graph.NodeID(4 + r.Intn(4)), Volume: r.Uniform(5, 60), Priority: 1},
			}
			if demands[1].Src == demands[1].Dst {
				continue
			}

			// Compact (cold) pipeline.
			aug, err := Augment(topo, PenaltyTrafficProportional)
			if err != nil {
				t.Fatalf("trial %d round %d: Augment: %v", trial, round, err)
			}
			coldAlloc, err := te.Greedy{}.Allocate(aug.Graph, demands)
			if err != nil {
				t.Fatalf("trial %d round %d: cold allocate: %v", trial, round, err)
			}
			coldDec, err := aug.Translate(graph.FlowResult{Value: coldAlloc.Throughput, EdgeFlow: coldAlloc.EdgeFlow})
			if err != nil {
				t.Fatalf("trial %d round %d: Translate: %v", trial, round, err)
			}
			coldAtt := aug.Attribution(coldAlloc.EdgeFlow)

			// Warm pipeline over the persistent augmenter.
			if err := warm.Refresh(); err != nil {
				t.Fatalf("trial %d round %d: Refresh: %v", trial, round, err)
			}
			warmAlloc, err := warmTE.Allocate(warm.G, demands)
			if err != nil {
				t.Fatalf("trial %d round %d: warm allocate: %v", trial, round, err)
			}
			if err := warm.TranslateInto(&dec, graph.FlowResult{Value: warmAlloc.Throughput, EdgeFlow: warmAlloc.EdgeFlow}); err != nil {
				t.Fatalf("trial %d round %d: TranslateInto: %v", trial, round, err)
			}
			att = warm.AttributionInto(att, warmAlloc.EdgeFlow)

			// Allocations agree bit-for-bit on the real edges.
			if got, want := len(warmAlloc.EdgeFlow), len(coldAlloc.EdgeFlow)+countZeroFakes(topo); got != want {
				t.Fatalf("trial %d round %d: augmented edge counts: warm %d, cold %d + %d zero fakes",
					trial, round, got, len(coldAlloc.EdgeFlow), countZeroFakes(topo))
			}
			if math.Float64bits(warmAlloc.Throughput) != math.Float64bits(coldAlloc.Throughput) {
				t.Fatalf("trial %d round %d: throughput warm %v cold %v", trial, round, warmAlloc.Throughput, coldAlloc.Throughput)
			}
			if math.Float64bits(warmAlloc.Cost) != math.Float64bits(coldAlloc.Cost) {
				t.Fatalf("trial %d round %d: cost warm %v cold %v", trial, round, warmAlloc.Cost, coldAlloc.Cost)
			}

			// Decisions are identical.
			if len(dec.EdgeFlow) != len(coldDec.EdgeFlow) {
				t.Fatalf("trial %d round %d: decision edge flows %d vs %d", trial, round, len(dec.EdgeFlow), len(coldDec.EdgeFlow))
			}
			for id := range dec.EdgeFlow {
				if math.Float64bits(dec.EdgeFlow[id]) != math.Float64bits(coldDec.EdgeFlow[id]) {
					t.Fatalf("trial %d round %d: edge %d flow warm %v cold %v",
						trial, round, id, dec.EdgeFlow[id], coldDec.EdgeFlow[id])
				}
			}
			if len(dec.Changes) != len(coldDec.Changes) {
				t.Fatalf("trial %d round %d: changes %d vs %d", trial, round, len(dec.Changes), len(coldDec.Changes))
			}
			for i := range dec.Changes {
				w, c := dec.Changes[i], coldDec.Changes[i]
				if w.Edge != c.Edge ||
					math.Float64bits(w.OldCapacity) != math.Float64bits(c.OldCapacity) ||
					math.Float64bits(w.NewCapacity) != math.Float64bits(c.NewCapacity) ||
					math.Float64bits(w.Penalty) != math.Float64bits(c.Penalty) ||
					math.Float64bits(w.FlowOnFake) != math.Float64bits(c.FlowOnFake) {
					t.Fatalf("trial %d round %d: change %d warm %+v cold %+v", trial, round, i, w, c)
				}
			}
			if math.Float64bits(dec.Value) != math.Float64bits(coldDec.Value) ||
				math.Float64bits(dec.PenaltyCost) != math.Float64bits(coldDec.PenaltyCost) {
				t.Fatalf("trial %d round %d: value/cost warm (%v,%v) cold (%v,%v)",
					trial, round, dec.Value, dec.PenaltyCost, coldDec.Value, coldDec.PenaltyCost)
			}

			// Attribution covers the same links with the same offers and
			// selections (fake IDs may differ between layouts by design).
			if len(att) != len(coldAtt) {
				t.Fatalf("trial %d round %d: attributions %d vs %d", trial, round, len(att), len(coldAtt))
			}
			for i := range att {
				w, c := att[i], coldAtt[i]
				if w.Real != c.Real ||
					math.Float64bits(w.FakeCapacity) != math.Float64bits(c.FakeCapacity) ||
					math.Float64bits(w.FakePenalty) != math.Float64bits(c.FakePenalty) ||
					math.Float64bits(w.FlowOnFake) != math.Float64bits(c.FlowOnFake) ||
					math.Float64bits(w.Residual) != math.Float64bits(c.Residual) ||
					w.Selected != c.Selected {
					t.Fatalf("trial %d round %d: attribution %d warm %+v cold %+v", trial, round, i, w, c)
				}
			}
		}
	}
}

// countZeroFakes counts links the compact augmentation would NOT create
// a fake edge for (the stable layout carries them at capacity 0).
func countZeroFakes(t *Topology) int {
	n := 0
	for i := 0; i < t.G.NumEdges(); i++ {
		if up, ok := t.Upgrades[graph.EdgeID(i)]; !ok || up.ExtraCapacity <= 0 {
			n++
		}
	}
	return n
}

// TestAugmenterRejectsStructuralChange pins the guard: growing the
// underlying topology after NewAugmenter must error, not silently
// mistranslate.
func TestAugmenterRejectsStructuralChange(t *testing.T) {
	r := rng.New(1)
	topo := randomUpgradeTopology(r, 4, 6)
	a, err := NewAugmenter(topo, nil)
	if err != nil {
		t.Fatalf("NewAugmenter: %v", err)
	}
	topo.G.AddEdge(graph.Edge{From: 0, To: 1, Capacity: 1})
	if err := a.Refresh(); err == nil {
		t.Fatal("Refresh accepted a structurally changed topology")
	}
}

// TestAugmenterSteadyStateAllocs verifies the warm round loop —
// Refresh, warm allocate, TranslateInto, AttributionInto — settles to
// zero allocations per round.
func TestAugmenterSteadyStateAllocs(t *testing.T) {
	r := rng.New(0xBEEF)
	topo := randomUpgradeTopology(r, 10, 30)
	warm, err := NewAugmenter(topo, PenaltyTrafficProportional)
	if err != nil {
		t.Fatalf("NewAugmenter: %v", err)
	}
	warmTE := te.NewWarm(te.Greedy{})
	demands := []te.Demand{
		{Src: 0, Dst: 5, Volume: 25},
		{Src: 1, Dst: 7, Volume: 18, Priority: 1},
	}
	var dec Decision
	var att []FakeAttribution
	round := func() {
		perturb(r, topo)
		if err := warm.Refresh(); err != nil {
			t.Fatal(err)
		}
		alloc, err := warmTE.Allocate(warm.G, demands)
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.TranslateInto(&dec, graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow}); err != nil {
			t.Fatal(err)
		}
		att = warm.AttributionInto(att, alloc.EdgeFlow)
	}
	// Warm-up rounds grow every scratch buffer to steady-state size.
	for i := 0; i < 5; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(20, round); avg != 0 {
		t.Fatalf("steady-state round allocates %v times per run, want 0", avg)
	}
}
