package core

import (
	"sort"

	"repro/internal/graph"
)

// This file answers the audit question behind Theorem 1 (§4): the TE
// algorithm selects fake edges implicitly, by routing flow over them —
// Attribution makes that selection explicit per physical link so the
// flight recorder can explain *why* an upgrade happened (or didn't).

// FakeAttribution describes, for one upgradable physical edge, what the
// augmentation offered the solver and what the solver did with it.
type FakeAttribution struct {
	// Real is the physical edge; Fake its fake edge in G′.
	Real, Fake graph.EdgeID
	// FakeCapacity and FakePenalty are the ⟨capacity, penalty⟩ the fake
	// edge advertised (§3.2): the headroom above the configured rate
	// and the per-unit activation cost charged for using it.
	FakeCapacity, FakePenalty float64
	// FlowOnFake is the flow the solver routed over the fake edge — a
	// positive value is the solver "selecting" the upgrade.
	FlowOnFake float64
	// Residual is the fake capacity the solver left unused.
	Residual float64
	// Selected reports FlowOnFake > graph.Eps, the same threshold
	// Translate uses to turn fake flow into a CapacityChange.
	Selected bool
}

// Attribution reports, for every upgradable physical edge, the fake
// edge the augmentation offered and how much flow the solver routed
// over it, sorted ascending by physical edge ID. edgeFlow is the flow
// result on the augmented graph (gadgetized links attribute via their
// inner fake edge). Out-of-range fake IDs read as zero flow, so a
// partial edgeFlow never panics.
func (a *Augmentation) Attribution(edgeFlow []float64) []FakeAttribution {
	res := graph.FlowResult{EdgeFlow: edgeFlow}
	out := make([]FakeAttribution, 0, len(a.FakeFor))
	for realID, fakeID := range a.FakeFor {
		fe := a.Graph.Edge(fakeID)
		f := res.FlowOn(fakeID)
		out = append(out, FakeAttribution{
			Real:         realID,
			Fake:         fakeID,
			FakeCapacity: fe.Capacity,
			FakePenalty:  fe.Cost,
			FlowOnFake:   f,
			Residual:     fe.Capacity - f,
			Selected:     f > graph.Eps,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Real < out[j].Real })
	return out
}
