package core

import (
	"math"

	"repro/internal/graph"
)

// Theorem1Report is the evidence for one instance of Theorem 1:
//
//	"Let G be a topology consisting of links with variable capacities,
//	 with penalty function P. There is an augmented topology G′ such
//	 that solving the min-cost max-flow problem on G′ is equivalent to
//	 solving max-flow on G."
//
// Equivalence here means the min-cost max-flow on G′ ships exactly the
// max-flow value of G with every upgrade available, and translating it
// back yields a feasible assignment on the upgraded physical topology.
type Theorem1Report struct {
	// BaseValue is the max flow on G with only current capacities.
	BaseValue float64
	// FullValue is the max flow on G with every upgrade applied — the
	// value "max-flow on G with variable capacities" attains.
	FullValue float64
	// AugmentedValue is the min-cost max-flow value on G′.
	AugmentedValue float64
	// TranslatedFeasible reports that the translated decision respects
	// the upgraded physical capacities and conserves flow.
	TranslatedFeasible bool
	// Holds is the theorem's claim: AugmentedValue == FullValue (and
	// the translation is feasible).
	Holds bool
}

// CheckTheorem1 builds the augmentation of t with the given penalty
// function, solves min-cost max-flow on G′ and max-flow on the fully
// upgraded G, translates the former, and verifies the equivalence for
// the commodity (src, dst).
func CheckTheorem1(t *Topology, src, dst graph.NodeID, penalty PenaltyFunc) (Theorem1Report, error) {
	var rep Theorem1Report

	base, err := t.G.MaxFlowValue(src, dst)
	if err != nil {
		return rep, err
	}
	rep.BaseValue = base

	full, err := t.FullCapacityGraph().MaxFlowValue(src, dst)
	if err != nil {
		return rep, err
	}
	rep.FullValue = full

	a, err := Augment(t, penalty)
	if err != nil {
		return rep, err
	}
	res, err := a.Graph.MinCostMaxFlow(src, dst)
	if err != nil {
		return rep, err
	}
	rep.AugmentedValue = res.Value

	dec, err := a.Translate(res)
	if err != nil {
		return rep, err
	}
	rep.TranslatedFeasible = decisionFeasible(t, src, dst, dec)
	rep.Holds = rep.TranslatedFeasible && math.Abs(rep.AugmentedValue-rep.FullValue) <= 1e-6
	return rep, nil
}

// decisionFeasible verifies the translated flow against the upgraded
// physical topology: capacities respected and flow conserved.
func decisionFeasible(t *Topology, src, dst graph.NodeID, d *Decision) bool {
	g := d.ApplyTo(t.G)
	net := make([]float64, g.NumNodes())
	for id, f := range d.EdgeFlow {
		e := g.Edge(graph.EdgeID(id))
		if f < -1e-6 || f > e.Capacity+1e-6 {
			return false
		}
		net[e.From] -= f
		net[e.To] += f
	}
	for n, v := range net {
		switch graph.NodeID(n) {
		case src, dst:
		default:
			if math.Abs(v) > 1e-6 {
				return false
			}
		}
	}
	return math.Abs(net[dst]-d.Value) <= 1e-6
}
