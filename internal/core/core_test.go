package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// twoPath builds a: src -> mid -> dst topology with 100 Gbps links,
// where both links can be upgraded by +100 at penalty 10.
func twoPath(t *testing.T) (*Topology, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	e1 := g.AddEdge(graph.Edge{From: s, To: m, Capacity: 100, Weight: 1})
	e2 := g.AddEdge(graph.Edge{From: m, To: d, Capacity: 100, Weight: 1})
	top := NewTopology(g)
	if err := top.SetUpgrade(e1, 100, 10); err != nil {
		t.Fatal(err)
	}
	if err := top.SetUpgrade(e2, 100, 10); err != nil {
		t.Fatal(err)
	}
	return top, s, d
}

func TestSetUpgradeValidation(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100})
	top := NewTopology(g)
	if err := top.SetUpgrade(99, 10, 1); err == nil {
		t.Fatal("unknown edge accepted")
	}
	if err := top.SetUpgrade(e, 10, -1); err == nil {
		t.Fatal("negative penalty accepted")
	}
	if err := top.SetUpgrade(e, 50, 5); err != nil {
		t.Fatal(err)
	}
	if top.Upgrades[e].ExtraCapacity != 50 {
		t.Fatal("upgrade not recorded")
	}
	// Non-positive extra removes the entry.
	if err := top.SetUpgrade(e, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, ok := top.Upgrades[e]; ok {
		t.Fatal("zero upgrade not removed")
	}
}

func TestSetTrafficValidation(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100})
	top := NewTopology(g)
	if err := top.SetTraffic(99, 10); err == nil {
		t.Fatal("unknown edge accepted")
	}
	if err := top.SetTraffic(e, -1); err == nil {
		t.Fatal("negative traffic accepted")
	}
	if err := top.SetTraffic(e, 70); err != nil {
		t.Fatal(err)
	}
}

func TestFullCapacityGraph(t *testing.T) {
	top, _, _ := twoPath(t)
	full := top.FullCapacityGraph()
	if full.Edge(0).Capacity != 200 || full.Edge(1).Capacity != 200 {
		t.Fatalf("full capacities: %v, %v", full.Edge(0).Capacity, full.Edge(1).Capacity)
	}
	// Original untouched.
	if top.G.Edge(0).Capacity != 100 {
		t.Fatal("original mutated")
	}
}

func TestAugmentAlgorithm1(t *testing.T) {
	top, _, _ := twoPath(t)
	a, err := Augment(top, PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	// G' = 2 real + 2 fake edges.
	if a.Graph.NumEdges() != 4 {
		t.Fatalf("augmented edges = %d, want 4", a.Graph.NumEdges())
	}
	// Real edges keep IDs and get cost 0.
	for id := 0; id < 2; id++ {
		e := a.Graph.Edge(graph.EdgeID(id))
		if e.Cost != 0 || e.Label == FakeLabel {
			t.Fatalf("real edge %d corrupted: %+v", id, e)
		}
	}
	// Fake edges parallel the real ones with U capacity and P cost.
	for fakeID, realID := range a.FakeOf {
		fe := a.Graph.Edge(fakeID)
		re := top.G.Edge(realID)
		if fe.From != re.From || fe.To != re.To {
			t.Fatalf("fake edge endpoints wrong: %+v vs %+v", fe, re)
		}
		if fe.Capacity != 100 || fe.Cost != 10 || fe.Label != FakeLabel {
			t.Fatalf("fake edge attrs wrong: %+v", fe)
		}
		if a.FakeFor[realID] != fakeID {
			t.Fatal("FakeFor inverse broken")
		}
	}
}

func TestAugmentSkipsNonUpgradable(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100})
	top := NewTopology(g)
	aug, err := Augment(top, nil) // nil penalty = default
	if err != nil {
		t.Fatal(err)
	}
	if aug.Graph.NumEdges() != 1 || len(aug.FakeOf) != 0 {
		t.Fatalf("non-upgradable link grew a fake edge")
	}
}

func TestAugmentNilTopology(t *testing.T) {
	if _, err := Augment(nil, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
}

func TestPenaltyFunctions(t *testing.T) {
	e := graph.Edge{}
	up := Upgrade{ExtraCapacity: 100, Penalty: 7}
	if r, f := PenaltyFromMatrix(e, up, 55); r != 0 || f != 7 {
		t.Fatalf("matrix penalty = %v, %v", r, f)
	}
	if r, f := PenaltyTrafficProportional(e, up, 55); r != 0 || f != 55 {
		t.Fatalf("traffic penalty = %v, %v", r, f)
	}
	// Penalty floor when traffic is below it.
	if _, f := PenaltyTrafficProportional(e, up, 3); f != 7 {
		t.Fatalf("traffic penalty floor = %v", f)
	}
	if r, f := PenaltyUnitWeights(e, up, 55); r != 1 || f != 1 {
		t.Fatalf("unit penalty = %v, %v", r, f)
	}
}

func TestMCMFOnAugmentedAchievesFullCapacity(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, PenaltyFromMatrix)
	res, err := a.Graph.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-200) > 1e-9 {
		t.Fatalf("augmented max flow = %v, want 200", res.Value)
	}
	// Cost: 100 units ride each fake edge at penalty 10.
	if math.Abs(res.Cost-2000) > 1e-9 {
		t.Fatalf("cost = %v, want 2000", res.Cost)
	}
}

func TestTranslateProducesUpgrades(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, PenaltyFromMatrix)
	res, _ := a.Graph.MinCostMaxFlow(s, d)
	dec, err := a.Translate(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(dec.Changes))
	}
	for _, ch := range dec.Changes {
		if ch.OldCapacity != 100 || ch.NewCapacity != 200 || ch.Penalty != 10 {
			t.Fatalf("change wrong: %+v", ch)
		}
		if math.Abs(ch.FlowOnFake-100) > 1e-9 {
			t.Fatalf("fake flow = %v", ch.FlowOnFake)
		}
	}
	if dec.TotalActivationPenalty() != 20 {
		t.Fatalf("activation penalty = %v", dec.TotalActivationPenalty())
	}
	// Combined physical flow: 200 on each link.
	for id, f := range dec.EdgeFlow {
		if math.Abs(f-200) > 1e-9 {
			t.Fatalf("edge %d combined flow = %v", id, f)
		}
	}
}

func TestTranslateNoUpgradeWhenDemandFits(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, PenaltyFromMatrix)
	// Demand below base capacity: MCMF with limit 80 should not touch
	// fake edges (they cost more).
	res, err := a.Graph.MinCostFlow(s, d, 80)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := a.Translate(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Changes) != 0 {
		t.Fatalf("unnecessary upgrades: %+v", dec.Changes)
	}
	if math.Abs(dec.Value-80) > 1e-9 {
		t.Fatalf("value = %v", dec.Value)
	}
}

func TestTranslateSizeMismatch(t *testing.T) {
	top, _, _ := twoPath(t)
	a, _ := Augment(top, nil)
	if _, err := a.Translate(graph.FlowResult{EdgeFlow: []float64{1}}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDecisionApplyTo(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, nil)
	res, _ := a.Graph.MinCostMaxFlow(s, d)
	dec, _ := a.Translate(res)
	g2 := dec.ApplyTo(top.G)
	if g2.Edge(0).Capacity != 200 {
		t.Fatalf("upgrade not applied: %v", g2.Edge(0).Capacity)
	}
	if top.G.Edge(0).Capacity != 100 {
		t.Fatal("ApplyTo mutated input")
	}
}

func TestDecisionPathFlows(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, nil)
	res, _ := a.Graph.MinCostMaxFlow(s, d)
	dec, _ := a.Translate(res)
	paths, err := dec.PathFlows(top, s, d)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, pf := range paths {
		total += pf.Amount
	}
	if math.Abs(total-200) > 1e-6 {
		t.Fatalf("path flows total %v", total)
	}
}

func TestTheorem1TwoPath(t *testing.T) {
	top, s, d := twoPath(t)
	rep, err := CheckTheorem1(top, s, d, PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("theorem fails: %+v", rep)
	}
	if rep.BaseValue != 100 || rep.FullValue != 200 || rep.AugmentedValue != 200 {
		t.Fatalf("values: %+v", rep)
	}
}

// Property test: Theorem 1 on random topologies with random upgrades,
// under each penalty function.
func TestTheorem1Random(t *testing.T) {
	r := rng.New(77)
	penalties := map[string]PenaltyFunc{
		"matrix":  PenaltyFromMatrix,
		"traffic": PenaltyTrafficProportional,
		"unit":    PenaltyUnitWeights,
	}
	for trial := 0; trial < 30; trial++ {
		g := graph.New()
		n := 5 + r.Intn(8)
		g.AddNodes(n)
		top := NewTopology(g)
		nEdges := n * 3
		for i := 0; i < nEdges; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: r.Uniform(50, 150), Weight: 1})
			if r.Bernoulli(0.6) {
				if err := top.SetUpgrade(id, r.Uniform(25, 100), r.Uniform(1, 50)); err != nil {
					t.Fatal(err)
				}
			}
			if err := top.SetTraffic(id, r.Uniform(0, 100)); err != nil {
				t.Fatal(err)
			}
		}
		src, dst := graph.NodeID(0), graph.NodeID(n-1)
		for name, pf := range penalties {
			rep, err := CheckTheorem1(top, src, dst, pf)
			if err != nil {
				t.Fatalf("trial %d (%s): %v", trial, name, err)
			}
			if !rep.Holds {
				t.Fatalf("trial %d (%s): theorem fails: %+v", trial, name, rep)
			}
			if rep.FullValue+1e-9 < rep.BaseValue {
				t.Fatalf("trial %d (%s): upgrades reduced capacity", trial, name)
			}
		}
	}
}

func TestRemoveInfeasible(t *testing.T) {
	top, s, d := twoPath(t)
	a, _ := Augment(top, PenaltyFromMatrix)
	// Drop the upgrade on edge 0 (its SNR fell).
	n := a.RemoveInfeasible(func(realID graph.EdgeID) bool { return realID != 0 })
	if n != 1 {
		t.Fatalf("removed %d fake edges, want 1", n)
	}
	res, err := a.Graph.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatal(err)
	}
	// Bottleneck: edge 0 stuck at 100.
	if math.Abs(res.Value-100) > 1e-9 {
		t.Fatalf("flow after removal = %v, want 100", res.Value)
	}
	dec, _ := a.Translate(res)
	for _, ch := range dec.Changes {
		if ch.Edge == 0 {
			t.Fatal("upgrade instructed on infeasible edge")
		}
	}
	// Removing again is a no-op.
	if n := a.RemoveInfeasible(func(realID graph.EdgeID) bool { return realID != 0 }); n != 0 {
		t.Fatalf("second removal removed %d", n)
	}
}

func TestMinimizeActivationsConsolidates(t *testing.T) {
	// Square A-B (top), C-D (bottom), sides A-C, B-D; demands force 25
	// extra units. Two fake activations tie with one under per-unit
	// costs; the greedy pass must consolidate to one.
	g := graph.New()
	a, b, c, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	s, tt := g.AddNode("S"), g.AddNode("T")
	ab := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	cd := g.AddEdge(graph.Edge{From: c, To: d, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: a, To: c, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: c, To: a, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: b, To: d, Capacity: 100, Weight: 1})
	g.AddEdge(graph.Edge{From: d, To: b, Capacity: 100, Weight: 1})
	// Super-source fans 125 to A and 125 to C; sink collects from B, D.
	g.AddEdge(graph.Edge{From: s, To: a, Capacity: 125})
	g.AddEdge(graph.Edge{From: s, To: c, Capacity: 125})
	g.AddEdge(graph.Edge{From: b, To: tt, Capacity: 125})
	g.AddEdge(graph.Edge{From: d, To: tt, Capacity: 125})

	top := NewTopology(g)
	if err := top.SetUpgrade(ab, 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := top.SetUpgrade(cd, 100, 100); err != nil {
		t.Fatal(err)
	}
	aug, _ := Augment(top, PenaltyFromMatrix)
	res, err := aug.Graph.MinCostMaxFlow(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-250) > 1e-9 {
		t.Fatalf("flow = %v, want 250", res.Value)
	}
	min, err := aug.MinimizeActivations(s, tt, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(min.Value-250) > 1e-9 {
		t.Fatalf("minimized flow = %v, want 250", min.Value)
	}
	if min.Cost > res.Cost+1e-9 {
		t.Fatalf("minimization increased cost: %v > %v", min.Cost, res.Cost)
	}
	dec, _ := aug.Translate(min)
	if len(dec.Changes) != 1 {
		t.Fatalf("after minimization %d activations, want 1 (changes: %+v)", len(dec.Changes), dec.Changes)
	}
}

// Property: on random instances, MinimizeActivations never loses flow
// value, never increases cost, and never increases the activation
// count.
func TestMinimizeActivationsProperty(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 15; trial++ {
		g := graph.New()
		n := 6 + r.Intn(6)
		g.AddNodes(n)
		top := NewTopology(g)
		for i := 0; i < n*3; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: r.Uniform(20, 100), Weight: 1})
			if r.Bernoulli(0.7) {
				if err := top.SetUpgrade(id, r.Uniform(20, 100), r.Uniform(1, 20)); err != nil {
					t.Fatal(err)
				}
			}
		}
		src, dst := graph.NodeID(0), graph.NodeID(n-1)
		aug, err := Augment(top, PenaltyFromMatrix)
		if err != nil {
			t.Fatal(err)
		}
		res, err := aug.Graph.MinCostMaxFlow(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		min, err := aug.MinimizeActivations(src, dst, res)
		if err != nil {
			t.Fatal(err)
		}
		if min.Value+1e-6 < res.Value {
			t.Fatalf("trial %d: lost value %v -> %v", trial, res.Value, min.Value)
		}
		if min.Cost > res.Cost+1e-6 {
			t.Fatalf("trial %d: cost rose %v -> %v", trial, res.Cost, min.Cost)
		}
		count := func(fr graph.FlowResult) int {
			c := 0
			for fakeID := range aug.FakeOf {
				if fr.EdgeFlow[fakeID] > graph.Eps {
					c++
				}
			}
			return c
		}
		if count(min) > count(res) {
			t.Fatalf("trial %d: activations rose %d -> %d", trial, count(res), count(min))
		}
		// The minimized result must still translate feasibly.
		dec, err := aug.Translate(min)
		if err != nil {
			t.Fatal(err)
		}
		if !decisionFeasible(top, src, dst, dec) {
			t.Fatalf("trial %d: minimized decision infeasible", trial)
		}
	}
}

func TestMinimizeActivationsSizeMismatch(t *testing.T) {
	top, _, _ := twoPath(t)
	a, _ := Augment(top, nil)
	if _, err := a.MinimizeActivations(0, 1, graph.FlowResult{EdgeFlow: []float64{1}}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestUnsplittableGadget(t *testing.T) {
	// Figure 8: single link A->B at 100, upgradable to 200. The plain
	// augmentation cannot carry an unsplittable 200; the gadget can.
	g := graph.New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100, Weight: 1})
	top := NewTopology(g)
	if err := top.SetUpgrade(e, 100, 100); err != nil {
		t.Fatal(err)
	}
	aug, _ := Augment(top, PenaltyFromMatrix)

	// Plain augmentation: the widest single path carries only 100.
	paths := aug.Graph.KShortestPaths(a, b, 3)
	widest := 0.0
	for _, p := range paths {
		minCap := math.Inf(1)
		for _, id := range p.Edges {
			if c := aug.Graph.Edge(id).Capacity; c < minCap {
				minCap = c
			}
		}
		if minCap > widest {
			widest = minCap
		}
	}
	if widest != 100 {
		t.Fatalf("pre-gadget widest single path = %v, want 100", widest)
	}

	inner, err := aug.UnsplittableGadget(e)
	if err != nil {
		t.Fatal(err)
	}
	// Now a single path of capacity 200 exists.
	paths = aug.Graph.KShortestPaths(a, b, 5)
	widest = 0
	for _, p := range paths {
		minCap := math.Inf(1)
		for _, id := range p.Edges {
			if c := aug.Graph.Edge(id).Capacity; c < minCap {
				minCap = c
			}
		}
		if minCap > widest {
			widest = minCap
		}
	}
	if widest != 200 {
		t.Fatalf("post-gadget widest single path = %v, want 200", widest)
	}

	// Total capacity A->B stays capped at 200 (not 100+200).
	mf, err := aug.Graph.MaxFlowValue(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mf-200) > 1e-9 {
		t.Fatalf("gadget total capacity = %v, want 200", mf)
	}

	// MCMF + translation still produces the upgrade and the right flow.
	res, err := aug.Graph.MinCostMaxFlow(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := aug.Translate(res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Value-200) > 1e-9 {
		t.Fatalf("translated value = %v", dec.Value)
	}
	if len(dec.Changes) != 1 || dec.Changes[0].Edge != e || dec.Changes[0].NewCapacity != 200 {
		t.Fatalf("translated changes: %+v", dec.Changes)
	}
	if math.Abs(dec.EdgeFlow[e]-200) > 1e-9 {
		t.Fatalf("physical edge flow = %v", dec.EdgeFlow[e])
	}
	_ = inner
}

func TestUnsplittableGadgetErrors(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("A"), g.AddNode("B")
	e := g.AddEdge(graph.Edge{From: a, To: b, Capacity: 100})
	plain := g.AddEdge(graph.Edge{From: b, To: a, Capacity: 100})
	top := NewTopology(g)
	if err := top.SetUpgrade(e, 100, 1); err != nil {
		t.Fatal(err)
	}
	aug, _ := Augment(top, nil)
	if _, err := aug.UnsplittableGadget(plain); err == nil {
		t.Fatal("gadget on non-upgradable edge accepted")
	}
	if _, err := aug.UnsplittableGadget(e); err != nil {
		t.Fatal(err)
	}
	// Second gadgetization of the same edge fails (fake already consumed).
	if _, err := aug.UnsplittableGadget(e); err == nil {
		t.Fatal("double gadgetization accepted")
	}
}

func BenchmarkAugmentAndSolve(b *testing.B) {
	r := rng.New(1)
	g := graph.New()
	const n = 40
	g.AddNodes(n)
	top := NewTopology(g)
	for i := 0; i < n*4; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: 1})
		if r.Bernoulli(0.7) {
			if err := top.SetUpgrade(id, 100, r.Uniform(1, 100)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Augment(top, PenaltyFromMatrix)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Graph.MinCostMaxFlow(0, n-1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Translate(res); err != nil {
			b.Fatal(err)
		}
	}
}
