package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestAttributionReportsSelectionAndResidual(t *testing.T) {
	g := graph.New()
	s, d := g.AddNode("s"), g.AddNode("d")
	e0 := g.AddEdge(graph.Edge{From: s, To: d, Capacity: 100})
	e1 := g.AddEdge(graph.Edge{From: s, To: d, Capacity: 100})

	top := NewTopology(g)
	if err := top.SetUpgrade(e0, 100, 2); err != nil {
		t.Fatal(err)
	}
	if err := top.SetUpgrade(e1, 50, 2); err != nil {
		t.Fatal(err)
	}
	aug, err := Augment(top, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Demand 260: base 200 plus 60 of upgrade headroom. The min-cost
	// solver fills free real capacity first, then the cheapest fakes.
	res, err := aug.Graph.MinCostFlow(s, d, 260)
	if err != nil {
		t.Fatal(err)
	}
	atts := aug.Attribution(res.EdgeFlow)
	if len(atts) != 2 {
		t.Fatalf("got %d attributions, want 2", len(atts))
	}
	if atts[0].Real != e0 || atts[1].Real != e1 {
		t.Fatalf("attributions not sorted by real edge: %+v", atts)
	}
	var selected, totalFake float64
	for _, a := range atts {
		if a.Fake != aug.FakeFor[a.Real] {
			t.Errorf("edge %d fake = %d, want %d", int(a.Real), int(a.Fake), int(aug.FakeFor[a.Real]))
		}
		if a.FakePenalty != 2 {
			t.Errorf("edge %d penalty = %v, want 2", int(a.Real), a.FakePenalty)
		}
		if math.Abs(a.Residual-(a.FakeCapacity-a.FlowOnFake)) > graph.Eps {
			t.Errorf("edge %d residual = %v, capacity %v flow %v", int(a.Real), a.Residual, a.FakeCapacity, a.FlowOnFake)
		}
		if a.Selected != (a.FlowOnFake > graph.Eps) {
			t.Errorf("edge %d selected = %v with flow %v", int(a.Real), a.Selected, a.FlowOnFake)
		}
		if a.Selected {
			selected++
		}
		totalFake += a.FlowOnFake
	}
	if selected == 0 {
		t.Fatal("no fake edge selected for a demand above base capacity")
	}
	if math.Abs(totalFake-60) > 1e-6 {
		t.Fatalf("fake flow = %v, want 60", totalFake)
	}

	// A short edgeFlow (e.g. from a stale solve) must not panic and
	// reads as zero fake flow.
	atts = aug.Attribution(res.EdgeFlow[:2])
	for _, a := range atts {
		if a.FlowOnFake != 0 || a.Selected {
			t.Errorf("short edgeFlow attributed flow: %+v", a)
		}
	}
}
