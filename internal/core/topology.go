// Package core implements the paper's primary contribution (§4): a
// graph abstraction that lets *unmodified* traffic-engineering
// algorithms exploit dynamic link capacities.
//
// The WAN topology G⟨V,E,U,P⟩ carries, per physical link e, the extra
// capacity U(e) its current SNR could support and the penalty P(e) of
// activating that upgrade (the service interruption caused by a
// modulation change). Algorithm 1 augments G with a *fake link* per
// upgradable edge, annotated ⟨capacity, penalty⟩. A TE algorithm run on
// the augmented graph G′ produces a flow whose fake-edge usage *is* the
// set of capacity upgrades to perform (Theorem 1: min-cost max-flow on
// G′ ≡ max-flow on G with dynamic capacities).
package core

import (
	"fmt"

	"repro/internal/graph"
)

// Upgrade describes the dynamic-capacity headroom of one physical link:
// the matrices U and P of Algorithm 1, row (v,w).
type Upgrade struct {
	// ExtraCapacity is U[v,w]: how much capacity the link's SNR allows
	// on top of its currently configured capacity. Zero means the link
	// cannot be upgraded.
	ExtraCapacity float64
	// Penalty is P[v,w]: the cost of activating the upgrade, reflecting
	// the traffic disrupted while the transceiver re-modulates. The TE
	// operator sets it as conservatively or aggressively as desired
	// (§4.2).
	Penalty float64
}

// Topology is the TE input G⟨V,E,U,P⟩: the IP-layer graph plus the
// upgrade matrices. Edges of G are physical links with their *current*
// capacities.
type Topology struct {
	// G holds the physical topology. Edge capacities are the currently
	// configured capacities; edge costs are ignored (the augmentation
	// assigns them); edge weights are the routing metric.
	G *graph.Graph
	// Upgrades maps a physical edge to its dynamic-capacity headroom.
	// Edges absent from the map cannot be upgraded.
	Upgrades map[graph.EdgeID]Upgrade
	// Traffic optionally records the current flow on each physical
	// edge, used by the traffic-proportional penalty function. May be
	// nil.
	Traffic map[graph.EdgeID]float64
}

// NewTopology wraps a graph with empty upgrade/traffic annotations.
func NewTopology(g *graph.Graph) *Topology {
	return &Topology{
		G:        g,
		Upgrades: make(map[graph.EdgeID]Upgrade),
		Traffic:  make(map[graph.EdgeID]float64),
	}
}

// SetUpgrade records that edge id can gain extra capacity at the given
// penalty. A non-positive extra capacity removes the entry.
func (t *Topology) SetUpgrade(id graph.EdgeID, extra, penalty float64) error {
	if !t.G.HasEdge(id) {
		return fmt.Errorf("core: unknown edge %d", int(id))
	}
	if penalty < 0 {
		return fmt.Errorf("core: negative penalty %v on edge %d", penalty, int(id))
	}
	if extra <= 0 {
		delete(t.Upgrades, id)
		return nil
	}
	t.Upgrades[id] = Upgrade{ExtraCapacity: extra, Penalty: penalty}
	return nil
}

// SetTraffic records the current traffic on edge id (for penalty
// functions).
func (t *Topology) SetTraffic(id graph.EdgeID, traffic float64) error {
	if !t.G.HasEdge(id) {
		return fmt.Errorf("core: unknown edge %d", int(id))
	}
	if traffic < 0 {
		return fmt.Errorf("core: negative traffic %v on edge %d", traffic, int(id))
	}
	t.Traffic[id] = traffic
	return nil
}

// FullCapacityGraph returns a copy of G with every upgradable edge set
// to its maximum capacity (current + extra). This is "G with dynamic
// capacities" — the right-hand side of Theorem 1.
func (t *Topology) FullCapacityGraph() *graph.Graph {
	g := t.G.Clone()
	for id, up := range t.Upgrades {
		g.SetCapacity(id, g.Edge(id).Capacity+up.ExtraCapacity)
	}
	return g
}

// PenaltyFunc computes, for a physical edge and its upgrade entry, the
// per-unit-flow cost to assign to the real edge and to the fake edge in
// the augmented graph. Algorithm 1's default sets the real edge cost to
// zero and the fake edge cost to P[v,w]; the comment in the algorithm
// notes it "can be adapted for other penalty functions, e.g., Fig. 7c".
type PenaltyFunc func(real graph.Edge, up Upgrade, currentTraffic float64) (realCost, fakeCost float64)

// PenaltyFromMatrix is Algorithm 1 verbatim: real edges cost 0, fake
// edges cost the configured penalty P[v,w].
func PenaltyFromMatrix(_ graph.Edge, up Upgrade, _ float64) (float64, float64) {
	return 0, up.Penalty
}

// PenaltyTrafficProportional implements the paper's suggested default
// (§4.2): "using the current link traffic as a penalty function" — the
// more traffic a link carries, the more disruptive its modulation
// change, so its fake edge costs more. The configured penalty acts as a
// floor so idle links still carry a nonzero reconfiguration cost.
func PenaltyTrafficProportional(_ graph.Edge, up Upgrade, currentTraffic float64) (float64, float64) {
	c := currentTraffic
	if up.Penalty > c {
		c = up.Penalty
	}
	return 0, c
}

// PenaltyUnitWeights is Figure 7c's "short paths" mode: every edge —
// real and fake — costs one unit per hop, so the TE favours short paths
// at all costs and capacity changes carry no extra charge.
func PenaltyUnitWeights(_ graph.Edge, _ Upgrade, _ float64) (float64, float64) {
	return 1, 1
}
