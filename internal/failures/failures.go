// Package failures models WAN link failures the way the paper's
// measurement study does (§2.2): a link *fails* when its SNR drops
// below the threshold of its configured modulation, and every failure
// has a root cause drawn from the taxonomy the authors extracted from
// seven months of operator tickets.
//
// Two complementary views are provided:
//
//   - Detection: scanning an SNR time series for threshold crossings,
//     yielding failure spans with their lowest SNR — the basis of
//     Figures 3a, 3b and 4c and of the availability analysis.
//   - Tickets: a generative model of operator failure tickets with the
//     paper's root-cause mix — the basis of Figures 4a and 4b.
package failures

import (
	"fmt"
	"time"

	"repro/internal/snr"
)

// Cause is a failure root-cause category (§2.2).
type Cause int

const (
	// CauseMaintenance is an unplanned event during scheduled
	// maintenance, "mostly due to human errors" (the paper's "Human"
	// category).
	CauseMaintenance Cause = iota
	// CauseFiberCut is an accidental break of the fiber.
	CauseFiberCut
	// CauseHardware is a failure of optical hardware: amplifiers,
	// transponders, optical cross connects.
	CauseHardware
	// CauseUndocumented covers tickets where technicians did not log
	// the exact action taken (but which are known not to be fiber cuts).
	CauseUndocumented

	// NumCauses is the number of categories.
	NumCauses = 4
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseMaintenance:
		return "maintenance"
	case CauseFiberCut:
		return "fiber-cut"
	case CauseHardware:
		return "hardware"
	case CauseUndocumented:
		return "undocumented"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Causes lists all categories in canonical order.
func Causes() []Cause {
	return []Cause{CauseMaintenance, CauseFiberCut, CauseHardware, CauseUndocumented}
}

// Span is one failure event detected in an SNR trace: a maximal run of
// samples below the configured threshold.
type Span struct {
	// Start and End are inclusive/exclusive sample indices.
	Start, End int
	// LowestSNR is the minimum SNR observed during the failure — the
	// quantity Figure 4c distributes. A loss-of-light failure bottoms
	// out at snr.LossOfLightdB.
	LowestSNR float64
}

// Duration returns the span's wall-clock duration at the 15-minute
// telemetry cadence.
func (s Span) Duration() time.Duration {
	return time.Duration(s.End-s.Start) * snr.SampleInterval
}

// Hours returns the duration in hours.
func (s Span) Hours() float64 { return s.Duration().Hours() }

// Detect scans samples for maximal runs strictly below thresholddB and
// returns them in order. This is the binary up/down rule the paper
// says today's networks enforce: "a dip in the SNR below the threshold
// results in the link being declared down".
func Detect(samples []float64, thresholddB float64) []Span {
	var out []Span
	inFail := false
	var cur Span
	for i, v := range samples {
		if v < thresholddB {
			if !inFail {
				inFail = true
				cur = Span{Start: i, LowestSNR: v}
			} else if v < cur.LowestSNR {
				cur.LowestSNR = v
			}
			continue
		}
		if inFail {
			cur.End = i
			out = append(out, cur)
			inFail = false
		}
	}
	if inFail {
		cur.End = len(samples)
		out = append(out, cur)
	}
	return out
}

// CountAtThreshold returns the number of failure events samples would
// experience if the link were configured at a modulation requiring
// thresholddB — the counterfactual of Figure 3a.
func CountAtThreshold(samples []float64, thresholddB float64) int {
	return len(Detect(samples, thresholddB))
}

// Downtime returns the total failed duration at the given threshold.
func Downtime(samples []float64, thresholddB float64) time.Duration {
	var d time.Duration
	for _, s := range Detect(samples, thresholddB) {
		d += s.Duration()
	}
	return d
}

// Availability returns the fraction of time the link is up at the
// given threshold, in [0, 1].
func Availability(samples []float64, thresholddB float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	down := 0
	for _, s := range Detect(samples, thresholddB) {
		down += s.End - s.Start
	}
	return 1 - float64(down)/float64(len(samples))
}

// AvoidableAt reports whether a failure span could have been survived
// by dropping the link to a lower-capacity modulation with threshold
// fallbackdB instead of declaring it down: true when the signal never
// fell below the fallback threshold. The paper's headline: 25% of
// failures keep SNR ≥ 3 dB, enough for 50 Gbps (§2.2).
func (s Span) AvoidableAt(fallbackdB float64) bool {
	return s.LowestSNR >= fallbackdB
}
