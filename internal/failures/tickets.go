package failures

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Ticket is one operator failure ticket: an unplanned outage with a
// manually assigned root cause, as analyzed in §2.2 (250 events over
// seven months).
type Ticket struct {
	Cause Cause
	// Duration is the outage length.
	Duration time.Duration
}

// TicketModel is the calibrated generative model of operator tickets.
// The paper's published shares:
//
//   - maintenance-window events: ≈25% of tickets, ≈20% of outage time;
//   - fiber cuts: ≈5% of tickets, ≈10% of outage time;
//   - the remainder split between hardware failures and undocumented
//     causes ("over 90% of link failure events present an opportunity"
//     — i.e. everything except fiber cuts).
//
// Frequency shares steer the categorical draw; per-cause log-normal
// mean durations are solved so the duration shares come out right
// (share_duration ∝ share_frequency × mean_duration).
type TicketModel struct {
	// FreqShare[c] is the probability a ticket has cause c.
	FreqShare [NumCauses]float64
	// MeanHours[c] is the mean outage duration for cause c.
	MeanHours [NumCauses]float64
	// SigmaLog is the log-normal shape parameter for durations.
	SigmaLog float64
}

// DefaultTicketModel returns the calibration matching Figure 4a/4b.
// With frequencies (.25, .05, .30, .40) and mean durations solved from
// duration shares (.20, .10, .40, .30):
//
//	mean_c ∝ durShare_c / freqShare_c → (0.8, 2.0, 1.333, 0.75) × u
//
// scaled so the overall mean outage is ≈ 5 h (failures "last for
// several hours", Figure 3b).
func DefaultTicketModel() TicketModel {
	freq := [NumCauses]float64{0.25, 0.05, 0.30, 0.40}
	durShare := [NumCauses]float64{0.20, 0.10, 0.40, 0.30}
	var m TicketModel
	m.FreqShare = freq
	// Unnormalized means.
	var meanAcc float64
	for c := 0; c < NumCauses; c++ {
		m.MeanHours[c] = durShare[c] / freq[c]
		meanAcc += freq[c] * m.MeanHours[c]
	}
	// Scale so overall mean is 5 hours.
	const overallMean = 5.0
	for c := 0; c < NumCauses; c++ {
		m.MeanHours[c] *= overallMean / meanAcc
	}
	m.SigmaLog = 0.6
	return m
}

// Validate reports whether the model is usable.
func (m TicketModel) Validate() error {
	var sum float64
	for c := 0; c < NumCauses; c++ {
		if m.FreqShare[c] < 0 {
			return fmt.Errorf("failures: negative frequency share for %v", Cause(c))
		}
		if m.MeanHours[c] <= 0 {
			return fmt.Errorf("failures: non-positive mean duration for %v", Cause(c))
		}
		sum += m.FreqShare[c]
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("failures: frequency shares sum to %v, want 1", sum)
	}
	if m.SigmaLog < 0 {
		return fmt.Errorf("failures: negative SigmaLog")
	}
	return nil
}

// Generate draws n tickets from the model.
func (m TicketModel) Generate(n int, r *rng.Source) ([]Ticket, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("failures: negative ticket count %d", n)
	}
	weights := m.FreqShare[:]
	out := make([]Ticket, n)
	for i := range out {
		c := Cause(r.Categorical(weights))
		// Log-normal with the target mean: mean = exp(mu + sigma²/2).
		mu := math.Log(m.MeanHours[c]) - m.SigmaLog*m.SigmaLog/2
		hours := r.LogNormal(mu, m.SigmaLog)
		out[i] = Ticket{Cause: c, Duration: time.Duration(hours * float64(time.Hour))}
	}
	return out, nil
}

// CauseShares summarizes a ticket set: the fraction of events and the
// fraction of total outage duration attributable to each cause —
// exactly the two bar charts of Figures 4a and 4b.
type CauseShares struct {
	// EventShare[c] is the fraction of tickets with cause c.
	EventShare [NumCauses]float64
	// DurationShare[c] is the fraction of total outage time.
	DurationShare [NumCauses]float64
	// Total counts tickets; TotalDuration sums outage time.
	Total         int
	TotalDuration time.Duration
}

// Summarize computes cause shares over a ticket set.
func Summarize(tickets []Ticket) CauseShares {
	var s CauseShares
	s.Total = len(tickets)
	var durByCause [NumCauses]time.Duration
	for _, t := range tickets {
		if t.Cause < 0 || int(t.Cause) >= NumCauses {
			continue
		}
		s.EventShare[t.Cause]++
		durByCause[t.Cause] += t.Duration
		s.TotalDuration += t.Duration
	}
	if s.Total > 0 {
		for c := 0; c < NumCauses; c++ {
			s.EventShare[c] /= float64(s.Total)
		}
	}
	if s.TotalDuration > 0 {
		for c := 0; c < NumCauses; c++ {
			s.DurationShare[c] = float64(durByCause[c]) / float64(s.TotalDuration)
		}
	}
	return s
}

// OpportunityEventShare returns the fraction of tickets that are *not*
// fiber cuts — the paper's "over 90% of link failure events present an
// opportunity to harness the lowered capacity".
func (s CauseShares) OpportunityEventShare() float64 {
	return 1 - s.EventShare[CauseFiberCut]
}

// AssignCause draws a root cause for a detected failure, conditioned on
// whether it was a loss-of-light event. Fiber cuts always kill the
// light; partial impairments never get classified as cuts. The
// conditional weights are derived from the model's marginal shares and
// the loss-of-light fraction so that the overall mix stays calibrated.
func (m TicketModel) AssignCause(lossOfLight bool, r *rng.Source) Cause {
	if lossOfLight {
		// Cuts plus the share of hardware failures that kill the laser
		// outright (transponder/amplifier shutdowns).
		w := []float64{m.FreqShare[CauseMaintenance] * 0.3, m.FreqShare[CauseFiberCut], m.FreqShare[CauseHardware] * 0.5, m.FreqShare[CauseUndocumented] * 0.3}
		return Cause(r.Categorical(w))
	}
	w := []float64{m.FreqShare[CauseMaintenance], 0, m.FreqShare[CauseHardware] * 0.5, m.FreqShare[CauseUndocumented]}
	return Cause(r.Categorical(w))
}
