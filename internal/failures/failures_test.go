package failures

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/snr"
)

func TestDetectBasic(t *testing.T) {
	// Threshold 6.5: two failure runs.
	s := []float64{10, 10, 5, 4, 10, 10, 2, 10}
	spans := Detect(s, 6.5)
	if len(spans) != 2 {
		t.Fatalf("got %d spans: %+v", len(spans), spans)
	}
	if spans[0].Start != 2 || spans[0].End != 4 || spans[0].LowestSNR != 4 {
		t.Fatalf("span 0 wrong: %+v", spans[0])
	}
	if spans[1].Start != 6 || spans[1].End != 7 || spans[1].LowestSNR != 2 {
		t.Fatalf("span 1 wrong: %+v", spans[1])
	}
}

func TestDetectNoFailures(t *testing.T) {
	if spans := Detect([]float64{10, 11, 12}, 6.5); spans != nil {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}

func TestDetectTrailingFailure(t *testing.T) {
	spans := Detect([]float64{10, 3, 2}, 6.5)
	if len(spans) != 1 || spans[0].End != 3 || spans[0].LowestSNR != 2 {
		t.Fatalf("trailing span wrong: %+v", spans)
	}
}

func TestDetectAllBelow(t *testing.T) {
	spans := Detect([]float64{1, 2, 3}, 6.5)
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End != 3 {
		t.Fatalf("all-below span wrong: %+v", spans)
	}
}

func TestDetectBoundaryEquality(t *testing.T) {
	// Exactly at threshold is NOT a failure (strictly below fails).
	spans := Detect([]float64{6.5, 6.5}, 6.5)
	if spans != nil {
		t.Fatalf("threshold-equal samples failed: %+v", spans)
	}
}

func TestDetectEmpty(t *testing.T) {
	if Detect(nil, 6.5) != nil {
		t.Fatal("nil samples produced spans")
	}
}

func TestCountAtThresholdMonotone(t *testing.T) {
	// Counterfactual: higher thresholds can only produce >= as much
	// total downtime, and the paper's Figure 3a rests on counts rising
	// with capacity. Verify downtime monotonicity on a noisy trace.
	r := rng.New(5)
	p := snr.Params{
		BaselinedB: 12, JitterStd: 1.5, JitterPhi: 0.9,
		DipsPerYear: 10, DipDepthMu: math.Log(6), DipDepthSigma: 0.5,
		DipDurationMuHours: math.Log(4), DipDurationSigma: 0.5,
	}
	series, err := snr.Generate(p, 30000, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	prevDown := time.Duration(0)
	for _, th := range []float64{3, 6.5, 8.5, 10.5, 13} {
		down := Downtime(series.Samples, th)
		if down < prevDown {
			t.Fatalf("downtime decreased at threshold %v", th)
		}
		prevDown = down
	}
}

func TestSpanDurationHours(t *testing.T) {
	s := Span{Start: 0, End: 8}
	if s.Duration() != 2*time.Hour {
		t.Fatalf("duration = %v", s.Duration())
	}
	if s.Hours() != 2 {
		t.Fatalf("hours = %v", s.Hours())
	}
}

func TestAvailability(t *testing.T) {
	s := []float64{10, 2, 2, 10} // 2 of 4 samples down
	if a := Availability(s, 6.5); a != 0.5 {
		t.Fatalf("availability = %v", a)
	}
	if a := Availability(nil, 6.5); a != 0 {
		t.Fatalf("empty availability = %v", a)
	}
	if a := Availability([]float64{10, 10}, 6.5); a != 1 {
		t.Fatalf("perfect availability = %v", a)
	}
}

func TestAvoidableAt(t *testing.T) {
	// SNR fell to 4 dB: below the 6.5 dB 100G threshold but above the
	// 3.0 dB 50G threshold → avoidable by flapping to 50 Gbps.
	s := Span{LowestSNR: 4}
	if !s.AvoidableAt(3.0) {
		t.Fatal("4 dB failure should be avoidable at 3 dB fallback")
	}
	dark := Span{LowestSNR: snr.LossOfLightdB}
	if dark.AvoidableAt(3.0) {
		t.Fatal("loss of light cannot be avoided")
	}
}

func TestCauseStrings(t *testing.T) {
	for _, c := range Causes() {
		if c.String() == "" {
			t.Fatalf("empty string for cause %d", int(c))
		}
	}
	if Cause(99).String() != "Cause(99)" {
		t.Fatal("unknown cause string")
	}
	if len(Causes()) != NumCauses {
		t.Fatal("Causes() incomplete")
	}
}

func TestDefaultTicketModelValid(t *testing.T) {
	m := DefaultTicketModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published anchors.
	if m.FreqShare[CauseMaintenance] != 0.25 {
		t.Fatalf("maintenance freq = %v", m.FreqShare[CauseMaintenance])
	}
	if m.FreqShare[CauseFiberCut] != 0.05 {
		t.Fatalf("fiber cut freq = %v", m.FreqShare[CauseFiberCut])
	}
	// Fiber cuts are rare but long: their mean must exceed the others'.
	for c := 0; c < NumCauses; c++ {
		if c != int(CauseFiberCut) && m.MeanHours[CauseFiberCut] <= m.MeanHours[c] {
			t.Fatalf("fiber cut mean %v not the longest (vs %v for %v)",
				m.MeanHours[CauseFiberCut], m.MeanHours[c], Cause(c))
		}
	}
}

func TestTicketModelValidation(t *testing.T) {
	m := DefaultTicketModel()
	m.FreqShare[0] = -0.1
	if err := m.Validate(); err == nil {
		t.Fatal("negative share accepted")
	}
	m = DefaultTicketModel()
	m.FreqShare[0] = 0.9 // shares no longer sum to 1
	if err := m.Validate(); err == nil {
		t.Fatal("non-normalized shares accepted")
	}
	m = DefaultTicketModel()
	m.MeanHours[1] = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero mean accepted")
	}
	m = DefaultTicketModel()
	m.SigmaLog = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative sigma accepted")
	}
}

func TestGenerateTicketsShares(t *testing.T) {
	// The paper's Figure 4a/4b shares must emerge from the generator.
	m := DefaultTicketModel()
	tickets, err := m.Generate(20000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tickets)
	wantEvents := []float64{0.25, 0.05, 0.30, 0.40}
	wantDur := []float64{0.20, 0.10, 0.40, 0.30}
	for c := 0; c < NumCauses; c++ {
		if math.Abs(s.EventShare[c]-wantEvents[c]) > 0.02 {
			t.Errorf("%v event share = %v, want ≈ %v", Cause(c), s.EventShare[c], wantEvents[c])
		}
		if math.Abs(s.DurationShare[c]-wantDur[c]) > 0.03 {
			t.Errorf("%v duration share = %v, want ≈ %v", Cause(c), s.DurationShare[c], wantDur[c])
		}
	}
	// Over 90% of events are an opportunity (non-fiber-cut).
	if s.OpportunityEventShare() < 0.9 {
		t.Errorf("opportunity share = %v, want > 0.9", s.OpportunityEventShare())
	}
}

func TestGenerateTicketsDurationsSeveralHours(t *testing.T) {
	m := DefaultTicketModel()
	tickets, _ := m.Generate(5000, rng.New(13))
	var total time.Duration
	for _, tk := range tickets {
		if tk.Duration <= 0 {
			t.Fatal("non-positive outage duration")
		}
		total += tk.Duration
	}
	mean := total.Hours() / float64(len(tickets))
	if mean < 3 || mean > 8 {
		t.Fatalf("mean outage = %v h, want ≈ 5", mean)
	}
}

func TestGenerateErrors(t *testing.T) {
	m := DefaultTicketModel()
	if _, err := m.Generate(-1, rng.New(1)); err == nil {
		t.Fatal("negative count accepted")
	}
	m.SigmaLog = -1
	if _, err := m.Generate(10, rng.New(1)); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.TotalDuration != 0 {
		t.Fatal("empty summary non-zero")
	}
	// Shares all zero; opportunity = 1 (vacuously no fiber cuts).
	if s.OpportunityEventShare() != 1 {
		t.Fatalf("opportunity = %v", s.OpportunityEventShare())
	}
}

func TestSummarizeSkipsUnknownCause(t *testing.T) {
	s := Summarize([]Ticket{{Cause: Cause(77), Duration: time.Hour}, {Cause: CauseHardware, Duration: time.Hour}})
	if s.EventShare[CauseHardware] != 0.5 {
		t.Fatalf("hardware share = %v", s.EventShare[CauseHardware])
	}
}

func TestAssignCauseConsistency(t *testing.T) {
	m := DefaultTicketModel()
	r := rng.New(17)
	for i := 0; i < 2000; i++ {
		c := m.AssignCause(false, r)
		if c == CauseFiberCut {
			t.Fatal("partial impairment classified as fiber cut")
		}
	}
	sawCut := false
	for i := 0; i < 2000; i++ {
		if m.AssignCause(true, r) == CauseFiberCut {
			sawCut = true
			break
		}
	}
	if !sawCut {
		t.Fatal("loss of light never classified as fiber cut")
	}
}

func BenchmarkDetectYear(b *testing.B) {
	r := rng.New(1)
	p := snr.Params{
		BaselinedB: 12, JitterStd: 1, JitterPhi: 0.9,
		DipsPerYear: 6, DipDepthMu: math.Log(7), DipDepthSigma: 0.5,
		DipDurationMuHours: math.Log(4), DipDurationSigma: 0.5,
	}
	series, err := snr.Generate(p, 35040, r, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Detect(series.Samples, 6.5)
	}
}
