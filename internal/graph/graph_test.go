package graph

import (
	"testing"
)

// line builds a simple path graph a->b->c->... with given capacity.
func line(t *testing.T, n int, capacity float64) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(Edge{From: nodes[i], To: nodes[i+1], Capacity: capacity, Weight: 1})
	}
	return g, nodes
}

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	id := g.AddEdge(Edge{From: a, To: b, Capacity: 10, Cost: 2, Weight: 3, Label: "x"})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	e := g.Edge(id)
	if e.From != a || e.To != b || e.Capacity != 10 || e.Cost != 2 || e.Weight != 3 || e.Label != "x" {
		t.Fatalf("edge mismatch: %+v", e)
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 {
		t.Fatal("adjacency broken")
	}
	if g.NodeName(a) != "a" {
		t.Fatal("node name")
	}
}

func TestAddNodes(t *testing.T) {
	g := New()
	first := g.AddNodes(5)
	if first != 0 || g.NumNodes() != 5 {
		t.Fatalf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
}

func TestParallelEdges(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := g.AddEdge(Edge{From: a, To: b, Capacity: 5})
	e2 := g.AddEdge(Edge{From: a, To: b, Capacity: 7})
	if e1 == e2 {
		t.Fatal("parallel edges share an ID")
	}
	if len(g.Out(a)) != 2 {
		t.Fatal("parallel edges not both in adjacency")
	}
	v, err := g.MaxFlowValue(a, b)
	if err != nil || v != 12 {
		t.Fatalf("max flow over parallel edges = %v (err %v), want 12", v, err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []Edge{
		{From: 0, To: 5, Capacity: 1},  // unknown node
		{From: 0, To: 1, Capacity: -1}, // negative capacity
	}
	for _, e := range cases {
		func() {
			g := New()
			g.AddNode("a")
			g.AddNode("b")
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%+v) did not panic", e)
				}
			}()
			g.AddEdge(e)
		}()
	}
}

func TestSetCapacityCost(t *testing.T) {
	g, nodes := line(t, 2, 10)
	_ = nodes
	g.SetCapacity(0, 42)
	if g.Edge(0).Capacity != 42 {
		t.Fatal("SetCapacity did not stick")
	}
	g.SetCost(0, -3)
	if g.Edge(0).Cost != -3 {
		t.Fatal("SetCost did not stick")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetCapacity(-1) did not panic")
			}
		}()
		g.SetCapacity(0, -1)
	}()
}

func TestCloneIsDeep(t *testing.T) {
	g, _ := line(t, 3, 10)
	c := g.Clone()
	c.SetCapacity(0, 1)
	if g.Edge(0).Capacity != 10 {
		t.Fatal("clone shares edge storage")
	}
	c.AddNode("extra")
	if g.NumNodes() != 3 {
		t.Fatal("clone shares node storage")
	}
}

func TestWithoutEdges(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	e1 := g.AddEdge(Edge{From: a, To: b, Capacity: 1})
	e2 := g.AddEdge(Edge{From: b, To: c, Capacity: 2})
	e3 := g.AddEdge(Edge{From: a, To: c, Capacity: 3})
	g2, mapping := g.WithoutEdges(map[EdgeID]bool{e2: true})
	if g2.NumEdges() != 2 {
		t.Fatalf("edges after removal = %d", g2.NumEdges())
	}
	if mapping[e2] != NoEdge {
		t.Fatal("removed edge still mapped")
	}
	if mapping[e1] == NoEdge || mapping[e3] == NoEdge {
		t.Fatal("surviving edges unmapped")
	}
	if g2.Edge(mapping[e3]).Capacity != 3 {
		t.Fatal("edge attributes lost in removal")
	}
	// Original untouched.
	if g.NumEdges() != 3 {
		t.Fatal("original mutated")
	}
}

func TestTotalCapacity(t *testing.T) {
	g, _ := line(t, 4, 5)
	if g.TotalCapacity() != 15 {
		t.Fatalf("total capacity = %v", g.TotalCapacity())
	}
}

func TestPathValidate(t *testing.T) {
	g, nodes := line(t, 3, 1)
	good := Path{Edges: []EdgeID{0, 1}, Nodes: []NodeID{nodes[0], nodes[1], nodes[2]}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	bad := Path{Edges: []EdgeID{1, 0}, Nodes: []NodeID{nodes[0], nodes[1], nodes[2]}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("disconnected path accepted")
	}
	short := Path{Edges: []EdgeID{0}, Nodes: []NodeID{nodes[0]}}
	if err := short.Validate(g); err == nil {
		t.Fatal("wrong node count accepted")
	}
	unknown := Path{Edges: []EdgeID{99}, Nodes: []NodeID{nodes[0], nodes[1]}}
	if err := unknown.Validate(g); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestNodeNameInvalid(t *testing.T) {
	g := New()
	if g.NodeName(5) != "invalid(5)" {
		t.Fatal("invalid node name")
	}
}

func TestEdgePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Edge(99) did not panic")
		}
	}()
	New().Edge(99)
}

func TestEdgesReturnsCopy(t *testing.T) {
	g, _ := line(t, 2, 10)
	es := g.Edges()
	es[0].Capacity = 0
	if g.Edge(0).Capacity != 10 {
		t.Fatal("Edges leaked internal state")
	}
}
