package graph

// Regression tests for the successive-shortest-path potential update
// (ISSUE 3). The old rule left phase-unreachable nodes' potentials
// untouched while their neighbours advanced; when a later residual arc
// re-enters such a node, the Dijkstra scan sees a negative reduced
// cost and MinCostFlow aborts with a spurious "negative reduced cost"
// error. updatePotentials now caps every node at dist[dst].

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// TestUpdatePotentialsStalePhaseSequence replays the stale-potential
// phase sequence at the potential level and checks the invariant the
// Dijkstra scan enforces. This test FAILS against the pre-fix update
// rule (pot[i] += dist[i] only when dist[i] is finite).
func TestUpdatePotentialsStalePhaseSequence(t *testing.T) {
	inf := math.Inf(1)
	// Four nodes: src=0, intermediate 1, x=2, dst=3. Before the phase
	// the reduced cost of the arc x->dst (cost 2) is
	//   rc = 2 + pot[2] - pot[3] = 2 + 1 - 3 = 0,
	// i.e. the invariant holds. The phase then reaches everything
	// except x (its only residual in-arc has no capacity this phase).
	pot := []float64{0, 1, 1, 3}
	dist := []float64{0, 2, inf, 5}
	updatePotentials(pot, dist, dist[3])

	// A later phase can restore capacity into x (pushing flow on an
	// arc out of x adds residual capacity on the reverse arc) and then
	// scan x->dst. Its reduced cost must still be nonnegative; with
	// the old rule pot[2] stays 1 while pot[3] advances to 8, so
	// rc = 2 + 1 - 8 = -5 and MinCostFlow would report the spurious
	// invariant-broken error.
	if rc := 2 + pot[2] - pot[3]; rc < 0 {
		t.Fatalf("reduced cost of arc out of phase-unreachable node went negative: %v (pot=%v)", rc, pot)
	}
	// Reachable nodes still advance by their exact distances…
	if pot[0] != 0 || pot[1] != 3 {
		t.Fatalf("reachable potentials wrong: %v", pot)
	}
	// …and unreachable (or beyond-dst) nodes advance by dist[dst].
	if pot[2] != 6 || pot[3] != 8 {
		t.Fatalf("capped potentials wrong: %v", pot)
	}
}

// TestUpdatePotentialsPreservesReducedCosts: after an update with any
// mix of reachable/unreachable nodes, every arc between reachable
// nodes that satisfied Dijkstra's relaxation bound keeps rc >= 0, and
// arcs out of unreachable nodes never lose potential relative to
// reachable heads.
func TestUpdatePotentialsPreservesReducedCosts(t *testing.T) {
	inf := math.Inf(1)
	pot := []float64{0, 2, 5, 0, 7}
	dist := []float64{0, 1, 4, inf, 9} // node 3 unreachable, node 4 beyond dst
	dd := 4.0                          // dist[dst] = dist[2]
	before := append([]float64(nil), pot...)
	updatePotentials(pot, dist, dd)
	for i := range pot {
		d := dist[i]
		want := before[i] + math.Min(d, dd)
		if math.IsInf(d, 1) {
			want = before[i] + dd
		}
		if pot[i] != want {
			t.Fatalf("pot[%d] = %v, want %v", i, pot[i], want)
		}
		if pot[i] < before[i] {
			t.Fatalf("pot[%d] decreased: %v -> %v", i, before[i], pot[i])
		}
	}
}

// TestMinCostFlowUnreachableNodeMultiPhase runs the full solver on a
// graph whose node x stays Dijkstra-unreachable across several phases
// (zero-capacity in-arc) while the rest of the network goes through
// the multi-phase augmentation that advances all other potentials.
// The solve must finish without the spurious invariant error and with
// the hand-computed optimum.
func TestMinCostFlowUnreachableNodeMultiPhase(t *testing.T) {
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	d := g.AddNode("d")
	g.AddEdge(Edge{From: s, To: a, Capacity: 1, Cost: 1})
	g.AddEdge(Edge{From: a, To: d, Capacity: 1, Cost: 1})
	g.AddEdge(Edge{From: s, To: b, Capacity: 1, Cost: 2})
	g.AddEdge(Edge{From: b, To: d, Capacity: 1, Cost: 2})
	// x hangs off a zero-capacity arc: unreachable in every phase, but
	// its potential is still folded into the update each round.
	g.AddEdge(Edge{From: s, To: x, Capacity: 0, Cost: -3})
	g.AddEdge(Edge{From: x, To: d, Capacity: 5, Cost: 0})

	res, err := g.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatalf("MinCostMaxFlow: %v", err)
	}
	if !stats.ApproxInDelta(res.Value, 2, 1e-9) || !stats.ApproxInDelta(res.Cost, 6, 1e-9) {
		t.Fatalf("value %v cost %v, want 2 and 6", res.Value, res.Cost)
	}
	if res.Stats.Phases < 2 {
		t.Fatalf("expected a multi-phase solve, got %d phases", res.Stats.Phases)
	}
}

// referenceMinCostMaxFlow is an independent successive-shortest-path
// oracle that runs Bellman-Ford on the residual graph each phase
// instead of Dijkstra-with-potentials. Slow but potential-free, so it
// cannot suffer the stale-potential failure by construction.
func referenceMinCostMaxFlow(g *Graph, src, dst NodeID) (value, cost float64) {
	r := newResidual(g)
	n := r.n
	for {
		dist := make([]float64, n)
		prevArc := make([]int, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[src] = 0
		for iter := 0; iter < n; iter++ {
			improved := false
			for u := 0; u < n; u++ {
				if math.IsInf(dist[u], 1) {
					continue
				}
				for _, a := range r.adj[u] {
					if r.cap[a] <= Eps {
						continue
					}
					v := r.head[a]
					if nd := dist[u] + r.cost[a]; nd+Eps < dist[v] {
						dist[v] = nd
						prevArc[v] = a
						improved = true
					}
				}
			}
			if !improved {
				break
			}
		}
		if math.IsInf(dist[dst], 1) {
			return value, cost
		}
		push := math.Inf(1)
		for v := dst; v != src; {
			a := prevArc[v]
			if r.cap[a] < push {
				push = r.cap[a]
			}
			v = r.from(a)
		}
		if push <= Eps {
			return value, cost
		}
		for v := dst; v != src; {
			a := prevArc[v]
			r.cap[a] -= push
			r.cap[a^1] += push
			cost += push * r.cost[a]
			v = r.from(a)
		}
		value += push
	}
}

// TestMinCostFlowMatchesBellmanFordReference sweeps random graphs —
// zero-capacity arcs and negative costs included, the exact regime the
// stale-potential sequence needs — and checks MinCostMaxFlow against
// the potential-free oracle on every solvable instance.
func TestMinCostFlowMatchesBellmanFordReference(t *testing.T) {
	trials := 4000
	if testing.Short() {
		trials = 400
	}
	r := rng.New(0xf10f)
	checked := 0
	for trial := 0; trial < trials; trial++ {
		n := 4 + r.Intn(5)
		g := New()
		g.AddNodes(n)
		m := n + r.Intn(2*n)
		for e := 0; e < m; e++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v,
				Capacity: float64(r.Intn(4)),
				Cost:     float64(r.Intn(11) - 4)})
		}
		src, dst := NodeID(0), NodeID(n-1)
		if _, neg := g.BellmanFord(src); neg {
			continue // legitimately rejected: negative cycle
		}
		res, err := g.MinCostMaxFlow(src, dst)
		if err != nil {
			t.Fatalf("trial %d: MinCostMaxFlow: %v", trial, err)
		}
		wantV, wantC := referenceMinCostMaxFlow(g, src, dst)
		if !stats.ApproxInDelta(res.Value, wantV, 1e-6) || !stats.ApproxInDelta(res.Cost, wantC, 1e-6) {
			t.Fatalf("trial %d: got value %v cost %v, reference value %v cost %v",
				trial, res.Value, res.Cost, wantV, wantC)
		}
		checked++
	}
	if checked < trials/2 {
		t.Fatalf("only %d/%d instances checked", checked, trials)
	}
}
