package graph

import (
	"fmt"
	"math"
)

// DisjointPair is a pair of edge-disjoint paths between the same
// endpoints, as used for WAN protection routing: when the working path
// fails (a fiber cut takes a link dark), traffic switches to the
// protection path.
type DisjointPair struct {
	Working, Protection Path
	// TotalWeight is the summed Weight of both paths (Suurballe
	// minimizes this).
	TotalWeight float64
}

// EdgeDisjointShortestPair computes the minimum-total-weight pair of
// edge-disjoint paths from src to dst (Suurballe/Bhandari). It returns
// ok = false when no two edge-disjoint paths exist. Zero-capacity edges
// are skipped, weights must be non-negative.
//
// Implementation: Bhandari's variant — find a shortest path, reverse
// and negate its edges, find a second shortest path with Bellman-Ford
// (negative arcs appear only on the reversed first path), then remove
// the arcs used in both directions and decompose the union into two
// paths.
func (g *Graph) EdgeDisjointShortestPair(src, dst NodeID) (DisjointPair, bool) {
	if !g.HasNode(src) || !g.HasNode(dst) || src == dst {
		return DisjointPair{}, false
	}
	first, _, ok := g.ShortestPathDijkstra(src, dst)
	if !ok {
		return DisjointPair{}, false
	}
	onFirst := make(map[EdgeID]bool, len(first.Edges))
	for _, id := range first.Edges {
		onFirst[id] = true
	}

	// Build the residual view: edges on the first path are replaced by
	// reverse arcs with negated weight; all other positive-capacity
	// edges keep their weight. We run Bellman-Ford over this implicit
	// graph.
	type arc struct {
		from, to NodeID
		weight   float64
		id       EdgeID // original edge
		reversed bool
	}
	var arcs []arc
	for _, e := range g.edges {
		if e.Capacity <= Eps {
			continue
		}
		if onFirst[e.ID] {
			arcs = append(arcs, arc{from: e.To, to: e.From, weight: -e.Weight, id: e.ID, reversed: true})
		} else {
			arcs = append(arcs, arc{from: e.From, to: e.To, weight: e.Weight, id: e.ID})
		}
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]int, n) // arc index
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for ai, a := range arcs {
			if math.IsInf(dist[a.from], 1) {
				continue
			}
			if nd := dist[a.from] + a.weight; nd+Eps < dist[a.to] {
				dist[a.to] = nd
				prev[a.to] = ai
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if math.IsInf(dist[dst], 1) {
		return DisjointPair{}, false
	}
	// Collect the second path's arcs.
	usedReverse := make(map[EdgeID]bool)
	secondEdges := make(map[EdgeID]bool)
	for at := dst; at != src; {
		ai := prev[at]
		if ai < 0 {
			return DisjointPair{}, false
		}
		a := arcs[ai]
		if a.reversed {
			usedReverse[a.id] = true
		} else {
			secondEdges[a.id] = true
		}
		at = a.from
	}

	// Union minus cancelled arcs: first-path edges not traversed in
	// reverse, plus second-path forward edges.
	remaining := make(map[EdgeID]bool)
	for id := range onFirst {
		if !usedReverse[id] {
			remaining[id] = true
		}
	}
	for id := range secondEdges {
		remaining[id] = true
	}

	// Decompose the remaining edge set into two src→dst paths by
	// walking out-edges greedily.
	out := make(map[NodeID][]EdgeID)
	for id := range remaining {
		e := g.edges[id]
		out[e.From] = append(out[e.From], id)
	}
	var paths []Path
	for k := 0; k < 2; k++ {
		p := Path{Nodes: []NodeID{src}}
		at := src
		for at != dst {
			avail := out[at]
			if len(avail) == 0 {
				return DisjointPair{}, false // malformed union
			}
			id := avail[len(avail)-1]
			out[at] = avail[:len(avail)-1]
			p.Edges = append(p.Edges, id)
			at = g.edges[id].To
			p.Nodes = append(p.Nodes, at)
			if len(p.Edges) > len(remaining) {
				return DisjointPair{}, false // cycle guard
			}
		}
		paths = append(paths, p)
	}

	pair := DisjointPair{Working: paths[0], Protection: paths[1]}
	pair.TotalWeight = pair.Working.WeightOn(g) + pair.Protection.WeightOn(g)
	// Keep the lighter path as working.
	if pair.Protection.WeightOn(g) < pair.Working.WeightOn(g) {
		pair.Working, pair.Protection = pair.Protection, pair.Working
	}
	return pair, true
}

// WidestPath returns the path from src to dst maximizing the minimum
// edge capacity (the bottleneck-shortest path), and that bottleneck.
// Ties are broken toward fewer hops. ok = false when dst is
// unreachable. Unsplittable-flow placement uses this.
func (g *Graph) WidestPath(src, dst NodeID) (Path, float64, bool) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return Path{}, 0, false
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, math.Inf(1), true
	}
	n := g.NumNodes()
	width := make([]float64, n)
	hops := make([]int, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range width {
		width[i] = 0
		hops[i] = math.MaxInt32
		prevEdge[i] = NoEdge
	}
	width[src] = math.Inf(1)
	hops[src] = 0
	for {
		// Extract the undone node with maximum width (fewest hops on
		// tie). Linear scan keeps it simple; graphs here are small.
		best := NoNode
		for v := 0; v < n; v++ {
			if done[v] || width[v] <= 0 {
				continue
			}
			if best == NoNode || width[v] > width[best] ||
				(width[v] == width[best] && hops[v] < hops[best]) { //nolint:nofloateq // tie-break on exact copies of the same min() value

				best = NodeID(v)
			}
		}
		if best == NoNode {
			break
		}
		if best == dst {
			break
		}
		done[best] = true
		for _, id := range g.Out(best) {
			e := g.edges[id]
			if e.Capacity <= Eps || done[e.To] {
				continue
			}
			w := math.Min(width[best], e.Capacity)
			if w > width[e.To] || (w == width[e.To] && hops[best]+1 < hops[e.To]) { //nolint:nofloateq // tie-break on exact copies of the same min() value
				width[e.To] = w
				hops[e.To] = hops[best] + 1
				prevEdge[e.To] = id
			}
		}
	}
	if width[dst] <= 0 {
		return Path{}, 0, false
	}
	return g.reconstruct(src, dst, prevEdge), width[dst], true
}

// MinCut returns the capacity and the edge set of a minimum s-t cut
// (the edges crossing from the source side of the residual graph after
// a max-flow). Capacity planners use this to find the binding
// bottleneck between two sites.
func (g *Graph) MinCut(src, dst NodeID) (float64, []EdgeID, error) {
	res, err := g.MaxFlow(src, dst, math.Inf(1))
	if err != nil {
		return 0, nil, err
	}
	// Residual reachability from src.
	resid := g.Clone()
	for id, f := range res.EdgeFlow {
		resid.SetCapacity(EdgeID(id), g.edges[id].Capacity-math.Min(f, g.edges[id].Capacity))
	}
	for id, f := range res.EdgeFlow {
		if f > Eps {
			e := g.edges[id]
			resid.AddEdge(Edge{From: e.To, To: e.From, Capacity: f})
		}
	}
	sSide := resid.Reachable(src)
	if sSide[dst] {
		return 0, nil, fmt.Errorf("graph: residual still connects %d to %d", int(src), int(dst))
	}
	var cut []EdgeID
	var total float64
	for _, e := range g.edges {
		if sSide[e.From] && !sSide[e.To] && e.Capacity > Eps {
			cut = append(cut, e.ID)
			total += e.Capacity
		}
	}
	return total, cut, nil
}
