package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestEdgeDisjointPairSimple(t *testing.T) {
	// Two disjoint 2-hop paths s->a->d and s->b->d.
	g := New()
	s, a, b, d := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("d")
	g.AddEdge(Edge{From: s, To: a, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: a, To: d, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: s, To: b, Capacity: 1, Weight: 2})
	g.AddEdge(Edge{From: b, To: d, Capacity: 1, Weight: 2})
	pair, ok := g.EdgeDisjointShortestPair(s, d)
	if !ok {
		t.Fatal("no pair found")
	}
	if err := pair.Working.Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := pair.Protection.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pair.TotalWeight != 6 {
		t.Fatalf("total weight = %v, want 6", pair.TotalWeight)
	}
	if pair.Working.WeightOn(g) != 2 {
		t.Fatalf("working weight = %v", pair.Working.WeightOn(g))
	}
	assertDisjoint(t, pair)
}

func assertDisjoint(t *testing.T, pair DisjointPair) {
	t.Helper()
	seen := map[EdgeID]bool{}
	for _, id := range pair.Working.Edges {
		seen[id] = true
	}
	for _, id := range pair.Protection.Edges {
		if seen[id] {
			t.Fatalf("edge %d on both paths", int(id))
		}
	}
}

func TestEdgeDisjointPairNeedsRerouting(t *testing.T) {
	// Classic Suurballe trap: the shortest path s->a->b->d uses the
	// a->b shortcut; a naive "remove it and find a second path" fails
	// because s's other out-edge leads only through b. The optimal
	// pair must undo a->b.
	g2 := New()
	s2, a2, b2, d2 := g2.AddNode("s"), g2.AddNode("a"), g2.AddNode("b"), g2.AddNode("d")
	g2.AddEdge(Edge{From: s2, To: a2, Capacity: 1, Weight: 1})
	g2.AddEdge(Edge{From: a2, To: d2, Capacity: 1, Weight: 5})
	g2.AddEdge(Edge{From: s2, To: b2, Capacity: 1, Weight: 5})
	g2.AddEdge(Edge{From: b2, To: d2, Capacity: 1, Weight: 1})
	g2.AddEdge(Edge{From: a2, To: b2, Capacity: 1, Weight: 1})
	// Shortest: s->a->b->d = 3. Disjoint pair must be s->a->d (6) +
	// s->b->d (6) = 12, forcing the algorithm to "undo" a->b.
	pair, ok := g2.EdgeDisjointShortestPair(s2, d2)
	if !ok {
		t.Fatal("no pair found")
	}
	assertDisjoint(t, pair)
	if math.Abs(pair.TotalWeight-12) > 1e-9 {
		t.Fatalf("total = %v, want 12", pair.TotalWeight)
	}
}

func TestEdgeDisjointPairNone(t *testing.T) {
	// Single bridge: no two edge-disjoint paths.
	g := New()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	g.AddEdge(Edge{From: s, To: m, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: m, To: d, Capacity: 1, Weight: 1})
	if _, ok := g.EdgeDisjointShortestPair(s, d); ok {
		t.Fatal("pair found across a bridge")
	}
}

func TestEdgeDisjointPairInvalid(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if _, ok := g.EdgeDisjointShortestPair(a, a); ok {
		t.Fatal("self pair")
	}
	if _, ok := g.EdgeDisjointShortestPair(a, 9); ok {
		t.Fatal("invalid node")
	}
}

func TestEdgeDisjointPairRandomAgainstMaxFlow(t *testing.T) {
	// Property: a disjoint pair exists iff max-flow with unit
	// capacities >= 2, and when it exists both paths are valid and
	// disjoint.
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		g := New()
		const n = 10
		g.AddNodes(n)
		for i := 0; i < 28; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: 1, Weight: r.Uniform(1, 5)})
		}
		src, dst := NodeID(0), NodeID(n-1)
		mf, err := g.MaxFlowValue(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		pair, ok := g.EdgeDisjointShortestPair(src, dst)
		if (mf >= 2-1e-9) != ok {
			t.Fatalf("trial %d: maxflow=%v but ok=%v", trial, mf, ok)
		}
		if ok {
			if err := pair.Working.Validate(g); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := pair.Protection.Validate(g); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			assertDisjoint(t, pair)
		}
	}
}

func TestWidestPathPrefersFatPipe(t *testing.T) {
	g := New()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	g.AddEdge(Edge{From: s, To: d, Capacity: 50, Weight: 1})  // thin direct
	g.AddEdge(Edge{From: s, To: m, Capacity: 200, Weight: 1}) // fat detour
	g.AddEdge(Edge{From: m, To: d, Capacity: 150, Weight: 1})
	p, width, ok := g.WidestPath(s, d)
	if !ok {
		t.Fatal("no path")
	}
	if width != 150 {
		t.Fatalf("width = %v, want 150", width)
	}
	if p.Len() != 2 {
		t.Fatalf("path = %+v", p)
	}
}

func TestWidestPathTieBreaksOnHops(t *testing.T) {
	g := New()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	g.AddEdge(Edge{From: s, To: d, Capacity: 100, Weight: 1})
	g.AddEdge(Edge{From: s, To: m, Capacity: 100, Weight: 1})
	g.AddEdge(Edge{From: m, To: d, Capacity: 100, Weight: 1})
	p, width, ok := g.WidestPath(s, d)
	if !ok || width != 100 {
		t.Fatalf("width = %v", width)
	}
	if p.Len() != 1 {
		t.Fatalf("tie not broken toward fewer hops: %+v", p)
	}
}

func TestWidestPathUnreachableAndSelf(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, _, ok := g.WidestPath(a, b); ok {
		t.Fatal("unreachable widest path")
	}
	p, w, ok := g.WidestPath(a, a)
	if !ok || !math.IsInf(w, 1) || p.Len() != 0 {
		t.Fatal("self widest path wrong")
	}
}

func TestWidestPathMatchesBruteForce(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		g := New()
		const n = 8
		g.AddNodes(n)
		for i := 0; i < 20; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 100), Weight: 1})
		}
		src, dst := NodeID(0), NodeID(n-1)
		_, width, ok := g.WidestPath(src, dst)
		// Brute force via binary search on capacity threshold +
		// reachability.
		best := 0.0
		caps := []float64{}
		for _, e := range g.Edges() {
			caps = append(caps, e.Capacity)
		}
		for _, c := range caps {
			sub := g.Clone()
			for _, e := range sub.Edges() {
				if e.Capacity < c {
					sub.SetCapacity(e.ID, 0)
				}
			}
			if sub.Reachable(src)[dst] && c > best {
				best = c
			}
		}
		if !ok {
			if best != 0 {
				t.Fatalf("trial %d: widest said unreachable, brute force %v", trial, best)
			}
			continue
		}
		if math.Abs(width-best) > 1e-9 {
			t.Fatalf("trial %d: widest %v != brute force %v", trial, width, best)
		}
	}
}

func TestMinCutMatchesMaxFlow(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 15; trial++ {
		g := New()
		const n = 9
		g.AddNodes(n)
		for i := 0; i < 30; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 10), Weight: 1})
		}
		src, dst := NodeID(0), NodeID(n-1)
		mf, err := g.MaxFlowValue(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		cut, edges, err := g.MinCut(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cut-mf) > 1e-6 {
			t.Fatalf("trial %d: cut %v != flow %v", trial, cut, mf)
		}
		// Removing the cut edges must disconnect src from dst.
		sub := g.Clone()
		for _, id := range edges {
			sub.SetCapacity(id, 0)
		}
		if sub.Reachable(src)[dst] {
			t.Fatalf("trial %d: cut does not disconnect", trial)
		}
	}
}

func TestMinCutDisconnected(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	cut, edges, err := g.MinCut(a, b)
	if err != nil || cut != 0 || len(edges) != 0 {
		t.Fatalf("cut=%v edges=%v err=%v", cut, edges, err)
	}
}
