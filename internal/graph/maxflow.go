package graph

import (
	"fmt"
	"math"
)

// FlowResult is the outcome of a flow computation on a Graph.
type FlowResult struct {
	// Value is the total flow shipped from source to sink.
	Value float64
	// EdgeFlow[id] is the flow assigned to edge id (same indexing as
	// the graph's edges).
	EdgeFlow []float64
	// Cost is the total cost sum(flow_e * cost_e). Dinic leaves it 0
	// unless computed; min-cost solvers fill it.
	Cost float64
	// Stats counts the work the solver did. Callers that build
	// observability feeds aggregate these; the counters are plain local
	// integers so the hot loops pay nothing for them.
	Stats SolveStats
}

// SolveStats counts solver work for observability. For Dinic, Phases
// is the number of level graphs built (BFS rounds) and Augmentations
// the number of blocking-flow pushes; for successive shortest paths,
// Phases is the number of Dijkstra runs and Augmentations the number
// of augmenting paths applied.
//
// Pops and Relaxations break a phase's cost down to its unit of work:
// Pops counts priority-queue (or BFS queue) dequeues, Relaxations
// counts residual arcs examined with positive capacity — the inner-loop
// body of every shortest-path search. Both are exact integers derived
// only from graph structure and solve order, never from timing, so they
// are byte-identical across runs and worker counts.
type SolveStats struct {
	Phases        int
	Augmentations int
	Pops          int
	Relaxations   int
}

// Add accumulates another solve's counts (for multi-solve callers
// like the per-demand TE allocators).
func (s *SolveStats) Add(o SolveStats) {
	s.Phases += o.Phases
	s.Augmentations += o.Augmentations
	s.Pops += o.Pops
	s.Relaxations += o.Relaxations
}

// FlowOn returns the flow assigned to edge id, or 0 when the id is out
// of range (e.g. an edge appended to the graph after the solve). The
// bounds check makes per-edge attribution safe against graph/result
// size mismatches without every caller re-validating lengths.
func (r *FlowResult) FlowOn(id EdgeID) float64 {
	if r == nil || id < 0 || int(id) >= len(r.EdgeFlow) {
		return 0
	}
	return r.EdgeFlow[id]
}

// costOn recomputes the cost of a flow assignment on g.
func (r *FlowResult) costOn(g *Graph) float64 {
	var c float64
	for id, f := range r.EdgeFlow {
		c += f * g.edges[id].Cost
	}
	return c
}

// residual is the arc-based residual network shared by the flow
// algorithms. Arc 2i is the forward copy of edge i; arc 2i+1 the
// backward copy.
type residual struct {
	n     int
	head  []NodeID  // arc -> target node
	cap   []float64 // arc -> remaining capacity
	cost  []float64 // arc -> cost per unit
	adj   [][]int   // node -> arc indices leaving it
	nEdge int       // original edge count
}

func newResidual(g *Graph) *residual {
	r := &residual{
		n:     g.NumNodes(),
		head:  make([]NodeID, 0, 2*g.NumEdges()),
		cap:   make([]float64, 0, 2*g.NumEdges()),
		cost:  make([]float64, 0, 2*g.NumEdges()),
		adj:   make([][]int, g.NumNodes()),
		nEdge: g.NumEdges(),
	}
	for _, e := range g.edges {
		// forward
		r.adj[e.From] = append(r.adj[e.From], len(r.head))
		r.head = append(r.head, e.To)
		r.cap = append(r.cap, e.Capacity)
		r.cost = append(r.cost, e.Cost)
		// backward
		r.adj[e.To] = append(r.adj[e.To], len(r.head))
		r.head = append(r.head, e.From)
		r.cap = append(r.cap, 0)
		r.cost = append(r.cost, -e.Cost)
	}
	return r
}

// from returns the origin node of arc a (the head of its partner).
func (r *residual) from(a int) NodeID { return r.head[a^1] }

// flows extracts per-edge net flow from the residual state.
func (r *residual) flows(g *Graph) []float64 {
	out := make([]float64, r.nEdge)
	for i := 0; i < r.nEdge; i++ {
		// Flow on edge i equals the capacity accumulated on its
		// backward arc.
		out[i] = r.cap[2*i+1]
	}
	return out
}

// MaxFlow computes a maximum flow from src to dst using Dinic's
// algorithm, pushing at most limit units (use math.Inf(1) for the true
// max flow). It returns an error for invalid endpoints.
func (g *Graph) MaxFlow(src, dst NodeID, limit float64) (FlowResult, error) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return FlowResult{}, fmt.Errorf("graph: MaxFlow endpoints invalid: %d -> %d", int(src), int(dst))
	}
	if src == dst {
		return FlowResult{EdgeFlow: make([]float64, g.NumEdges())}, nil
	}
	if limit < 0 || math.IsNaN(limit) {
		return FlowResult{}, fmt.Errorf("graph: MaxFlow limit %v invalid", limit)
	}

	r := newResidual(g)
	level := make([]int, r.n)
	iter := make([]int, r.n)
	var total float64
	var stats SolveStats

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			stats.Pops++
			for _, a := range r.adj[u] {
				if r.cap[a] <= Eps {
					continue
				}
				stats.Relaxations++
				if level[r.head[a]] < 0 {
					level[r.head[a]] = level[u] + 1
					queue = append(queue, r.head[a])
				}
			}
		}
		return level[dst] >= 0
	}

	var dfs func(u NodeID, f float64) float64
	dfs = func(u NodeID, f float64) float64 {
		if u == dst {
			return f
		}
		for ; iter[u] < len(r.adj[u]); iter[u]++ {
			a := r.adj[u][iter[u]]
			v := r.head[a]
			if r.cap[a] > Eps && level[v] == level[u]+1 {
				d := dfs(v, math.Min(f, r.cap[a]))
				if d > Eps {
					r.cap[a] -= d
					r.cap[a^1] += d
					return d
				}
			}
		}
		return 0
	}

	for total+Eps < limit && bfs() {
		stats.Phases++
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, limit-total)
			if f <= Eps {
				break
			}
			stats.Augmentations++
			total += f
			if total+Eps >= limit {
				break
			}
		}
	}

	res := FlowResult{Value: total, EdgeFlow: r.flows(g), Stats: stats}
	res.Cost = res.costOn(g)
	return res, nil
}

// MaxFlowValue returns just the max-flow value from src to dst.
func (g *Graph) MaxFlowValue(src, dst NodeID) (float64, error) {
	r, err := g.MaxFlow(src, dst, math.Inf(1))
	if err != nil {
		return 0, err
	}
	return r.Value, nil
}
