package graph

// Property-based tests (testing/quick + seeded generators) for the
// invariants the rest of the system leans on. These complement the
// example-based tests in graph_test.go/flow_test.go by exploring the
// input space.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomGraph builds a reproducible random graph from a seed.
func randomGraph(seed uint64, n, edges int) *Graph {
	r := rng.New(seed)
	g := New()
	g.AddNodes(n)
	for i := 0; i < edges; i++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(Edge{
			From: u, To: v,
			Capacity: r.Uniform(0.5, 20),
			Cost:     r.Uniform(0, 5),
			Weight:   r.Uniform(0.5, 10),
		})
	}
	return g
}

// TestPropertyMaxFlowUpperBounds: max flow never exceeds either the
// out-capacity of the source or the in-capacity of the sink.
func TestPropertyMaxFlowUpperBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 8, 24)
		src, dst := NodeID(0), NodeID(7)
		v, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		var outCap, inCap float64
		for _, id := range g.Out(src) {
			outCap += g.Edge(id).Capacity
		}
		for _, id := range g.In(dst) {
			inCap += g.Edge(id).Capacity
		}
		return v <= outCap+1e-6 && v <= inCap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMaxFlowMonotoneInCapacity: raising one edge's capacity
// never lowers the max flow.
func TestPropertyMaxFlowMonotoneInCapacity(t *testing.T) {
	f := func(seed uint64, which uint8, extraRaw uint8) bool {
		g := randomGraph(seed, 8, 24)
		if g.NumEdges() == 0 {
			return true
		}
		src, dst := NodeID(0), NodeID(7)
		before, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		id := EdgeID(int(which) % g.NumEdges())
		extra := float64(extraRaw%50) + 1
		g.SetCapacity(id, g.Edge(id).Capacity+extra)
		after, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		return after >= before-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMinCostNeverCheaperThanAnyFlow: among flows of the same
// value, MCMF's cost is minimal — in particular not higher than the
// cost of the Dinic flow of equal value re-routed by MCMF with a limit.
func TestPropertyMinCostAtMostDinicCost(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 8, 24)
		src, dst := NodeID(0), NodeID(7)
		dinic, err := g.MaxFlow(src, dst, math.Inf(1))
		if err != nil {
			return false
		}
		if dinic.Value <= Eps {
			return true
		}
		mcmf, err := g.MinCostFlow(src, dst, dinic.Value)
		if err != nil {
			return false
		}
		if math.Abs(mcmf.Value-dinic.Value) > 1e-6 {
			return false
		}
		return mcmf.Cost <= dinic.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMinCostFlowCostMonotoneInLimit: shipping more never
// lowers total cost (costs are non-negative here).
func TestPropertyMinCostFlowCostMonotoneInLimit(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		g := randomGraph(seed, 8, 24)
		src, dst := NodeID(0), NodeID(7)
		a := float64(aRaw % 30)
		b := float64(bRaw % 30)
		if a > b {
			a, b = b, a
		}
		ra, err := g.MinCostFlow(src, dst, a)
		if err != nil {
			return false
		}
		rb, err := g.MinCostFlow(src, dst, b)
		if err != nil {
			return false
		}
		if rb.Value < ra.Value-1e-6 {
			return false
		}
		return rb.Cost >= ra.Cost-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDijkstraTriangleInequality: d(s,t) <= d(s,m) + d(m,t).
func TestPropertyDijkstraTriangleInequality(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		g := randomGraph(seed, 9, 30)
		s, tt := NodeID(0), NodeID(8)
		m := NodeID(int(mRaw) % 9)
		_, dst2, okST := g.ShortestPathDijkstra(s, tt)
		if !okST {
			return true
		}
		_, dsm, okSM := g.ShortestPathDijkstra(s, m)
		_, dmt, okMT := g.ShortestPathDijkstra(m, tt)
		if !okSM || !okMT {
			return true
		}
		return dst2 <= dsm+dmt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKShortestFirstMatchesDijkstra: the first of the k
// shortest paths has exactly the Dijkstra distance.
func TestPropertyKShortestFirstMatchesDijkstra(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 8, 24)
		src, dst := NodeID(0), NodeID(7)
		_, w, ok := g.ShortestPathDijkstra(src, dst)
		paths := g.KShortestPaths(src, dst, 3)
		if !ok {
			return len(paths) == 0
		}
		if len(paths) == 0 {
			return false
		}
		return math.Abs(paths[0].WeightOn(g)-w) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCloneIndependence: operations on a clone never affect the
// original's flow results.
func TestPropertyCloneIndependence(t *testing.T) {
	f := func(seed uint64, which uint8) bool {
		g := randomGraph(seed, 7, 20)
		if g.NumEdges() == 0 {
			return true
		}
		src, dst := NodeID(0), NodeID(6)
		before, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		c := g.Clone()
		id := EdgeID(int(which) % c.NumEdges())
		c.SetCapacity(id, 0)
		c.AddNode("extra")
		after, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		return math.Abs(before-after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWidestAtLeastMaxFlowShare: the widest single path's
// bottleneck is at most the max flow (a single path is one feasible
// flow) and positive iff connectivity exists.
func TestPropertyWidestBelowMaxFlow(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(seed, 8, 24)
		src, dst := NodeID(0), NodeID(7)
		_, width, ok := g.WidestPath(src, dst)
		mf, err := g.MaxFlowValue(src, dst)
		if err != nil {
			return false
		}
		if !ok {
			return mf < 1e-6
		}
		return width <= mf+1e-6 && width > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWithoutEdgesFlowMatchesZeroed: removing edges is
// equivalent to zeroing their capacity for flow purposes.
func TestPropertyWithoutEdgesFlowMatchesZeroed(t *testing.T) {
	f := func(seed uint64, mask uint16) bool {
		g := randomGraph(seed, 7, 18)
		src, dst := NodeID(0), NodeID(6)
		remove := map[EdgeID]bool{}
		zeroed := g.Clone()
		for i := 0; i < g.NumEdges(); i++ {
			if mask&(1<<(i%16)) != 0 && i%3 == 0 {
				remove[EdgeID(i)] = true
				zeroed.SetCapacity(EdgeID(i), 0)
			}
		}
		removedG, _ := g.WithoutEdges(remove)
		a, err1 := removedG.MaxFlowValue(src, dst)
		b, err2 := zeroed.MaxFlowValue(src, dst)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
