package graph

import (
	"math"
	"testing"
)

// diamond builds s -> {a, b} -> t with two disjoint unit-cost paths.
func statsDiamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	first := g.AddNodes(4)
	s, a, b, d := first, first+1, first+2, first+3
	g.AddEdge(Edge{From: s, To: a, Capacity: 10, Cost: 1})
	g.AddEdge(Edge{From: s, To: b, Capacity: 10, Cost: 2})
	g.AddEdge(Edge{From: a, To: d, Capacity: 10, Cost: 1})
	g.AddEdge(Edge{From: b, To: d, Capacity: 10, Cost: 2})
	return g, s, d
}

func TestMaxFlowReportsSolveStats(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MaxFlow(s, d, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("value = %v, want 20", res.Value)
	}
	// Dinic ships both disjoint paths in the first level graph: two
	// augmentations, and ≥1 phase (the final phase finds no path).
	if res.Stats.Augmentations != 2 {
		t.Fatalf("augmentations = %d, want 2", res.Stats.Augmentations)
	}
	if res.Stats.Phases < 1 {
		t.Fatalf("phases = %d, want >= 1", res.Stats.Phases)
	}
}

func TestMinCostFlowReportsSolveStats(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("value = %v, want 20", res.Value)
	}
	// Successive shortest paths augments once per disjoint path, and
	// runs one extra Dijkstra to prove no path remains.
	if res.Stats.Augmentations != 2 {
		t.Fatalf("augmentations = %d, want 2", res.Stats.Augmentations)
	}
	if res.Stats.Phases != 3 {
		t.Fatalf("phases = %d, want 3", res.Stats.Phases)
	}
}

func TestSolveStatsAdd(t *testing.T) {
	var s SolveStats
	s.Add(SolveStats{Phases: 2, Augmentations: 3})
	s.Add(SolveStats{Phases: 1, Augmentations: 1})
	if s.Phases != 3 || s.Augmentations != 4 {
		t.Fatalf("stats = %+v", s)
	}
}
