package graph

import (
	"math"
	"testing"
)

// diamond builds s -> {a, b} -> t with two disjoint unit-cost paths.
func statsDiamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	first := g.AddNodes(4)
	s, a, b, d := first, first+1, first+2, first+3
	g.AddEdge(Edge{From: s, To: a, Capacity: 10, Cost: 1})
	g.AddEdge(Edge{From: s, To: b, Capacity: 10, Cost: 2})
	g.AddEdge(Edge{From: a, To: d, Capacity: 10, Cost: 1})
	g.AddEdge(Edge{From: b, To: d, Capacity: 10, Cost: 2})
	return g, s, d
}

func TestMaxFlowReportsSolveStats(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MaxFlow(s, d, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("value = %v, want 20", res.Value)
	}
	// Dinic ships both disjoint paths in the first level graph: two
	// augmentations, and ≥1 phase (the final phase finds no path).
	if res.Stats.Augmentations != 2 {
		t.Fatalf("augmentations = %d, want 2", res.Stats.Augmentations)
	}
	if res.Stats.Phases < 1 {
		t.Fatalf("phases = %d, want >= 1", res.Stats.Phases)
	}
}

func TestMinCostFlowReportsSolveStats(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 20 {
		t.Fatalf("value = %v, want 20", res.Value)
	}
	// Successive shortest paths augments once per disjoint path, and
	// runs one extra Dijkstra to prove no path remains.
	if res.Stats.Augmentations != 2 {
		t.Fatalf("augmentations = %d, want 2", res.Stats.Augmentations)
	}
	if res.Stats.Phases != 3 {
		t.Fatalf("phases = %d, want 3", res.Stats.Phases)
	}
}

func TestSolveStatsAdd(t *testing.T) {
	var s SolveStats
	s.Add(SolveStats{Phases: 2, Augmentations: 3, Pops: 10, Relaxations: 20})
	s.Add(SolveStats{Phases: 1, Augmentations: 1, Pops: 1, Relaxations: 2})
	if s.Phases != 3 || s.Augmentations != 4 || s.Pops != 11 || s.Relaxations != 22 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestMinCostFlowPinnedWorkCounts pins the exact pop and relaxation
// counts of the SSP solver on the hand-checked diamond. Derivation
// (nodes s,a,b,d; potentials from Bellman-Ford are 0,1,2,2):
//
//	Phase 1: pop s (relax s→a, s→b), pop a (relax a→d), pop b (relax
//	         b→d), pop d (both residual arcs empty) — 4 pops, 4
//	         relaxations; augment 10 over s→a→d.
//	Phase 2: pop s (relax s→b; s→a now saturated), pop b (relax b→d),
//	         pop d (relax backward d→a, opened by phase 1), pop a
//	         (relax backward a→s) — 4 pops, 4 relaxations; augment 10
//	         over s→b→d.
//	Phase 3: pop s, both outgoing arcs saturated — 1 pop, 0
//	         relaxations; no path, terminate.
//
// Any drift here means the solve order changed, which changes every
// rwc_work_* series downstream — exactly what this regression test is
// for.
func TestMinCostFlowPinnedWorkCounts(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MinCostMaxFlow(s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := SolveStats{Phases: 3, Augmentations: 2, Pops: 9, Relaxations: 8}
	if res.Stats != want {
		t.Fatalf("stats = %+v, want %+v", res.Stats, want)
	}
}

// TestMaxFlowPinnedWorkCounts pins Dinic on the same diamond: BFS 1
// pops s,a,b,d and relaxes the four forward edges (b→d's relaxation
// finds d already leveled), then one blocking-flow pass ships both
// paths; BFS 2 pops only s (both source arcs saturated) and fails.
func TestMaxFlowPinnedWorkCounts(t *testing.T) {
	g, s, d := statsDiamond(t)
	res, err := g.MaxFlow(s, d, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	want := SolveStats{Phases: 1, Augmentations: 2, Pops: 5, Relaxations: 4}
	if res.Stats != want {
		t.Fatalf("stats = %+v, want %+v", res.Stats, want)
	}
}
