package graph

import (
	"fmt"
	"math"
)

// MCFSolver is a reusable successive-shortest-paths min-cost flow
// solver bound to one graph's structure. It holds the residual network
// in CSR (flat-slice) form plus every scratch buffer a solve needs, so
// repeated solves over the same graph — the TE round hot path — do not
// allocate. Graph.MinCostFlow is a thin wrapper that builds a fresh
// solver per call, so the warm and cold paths share one implementation
// and produce bit-identical results.
//
// The solver re-reads edge capacities and costs from the graph (or the
// fwdCap override) at the start of every Solve, so callers may mutate
// them between solves. Structure (node/edge count) is re-checked each
// Solve and the CSR layout rebuilt if it changed; rebuilding allocates,
// steady-state solves do not.
//
// A solver is not safe for concurrent use.
type MCFSolver struct {
	g      *Graph
	nNodes int
	nEdges int

	// Residual arcs: arc 2i is the forward copy of edge i, arc 2i+1
	// the backward copy (same layout as the Dinic residual).
	head []NodeID  // arc -> target node
	rcap []float64 // arc -> remaining capacity
	cost []float64 // arc -> cost per unit

	// CSR adjacency: the arcs leaving node u are
	// arcs[arcStart[u]:arcStart[u+1]], in edge-ID order — the exact
	// per-node order the append-built residual used, so Dijkstra
	// tie-breaking (and therefore every result bit) is unchanged.
	arcStart []int32
	arcs     []int32

	// Scratch reused across solves and phases.
	pot     []float64
	dist    []float64
	prevArc []int32
	done    []bool
	pq      []mcfItem
}

// potBound is the sanity ceiling on Johnson potentials. Potentials grow
// by at most one sink distance per phase; a magnitude beyond this bound
// (or a NaN) means the invariant is broken — costs far outside the
// problem's scale or unbounded growth — and further clamping would
// silently return wrong flows.
const potBound = 1e30

// NewMCFSolver builds a solver bound to g's current structure.
func NewMCFSolver(g *Graph) *MCFSolver {
	s := &MCFSolver{g: g}
	s.build()
	return s
}

// build (re)derives the CSR residual layout from the bound graph.
func (s *MCFSolver) build() {
	g := s.g
	s.nNodes = g.NumNodes()
	s.nEdges = g.NumEdges()
	nArcs := 2 * s.nEdges

	if cap(s.head) < nArcs {
		s.head = make([]NodeID, nArcs)
	}
	s.head = s.head[:nArcs]
	s.rcap = grow(s.rcap, nArcs)
	s.cost = grow(s.cost, nArcs)
	s.arcs = growInt32(s.arcs, nArcs)
	s.arcStart = growInt32(s.arcStart, s.nNodes+1)
	s.pot = grow(s.pot, s.nNodes)
	s.dist = grow(s.dist, s.nNodes)
	s.prevArc = growInt32(s.prevArc, s.nNodes)
	if cap(s.done) < s.nNodes {
		s.done = make([]bool, s.nNodes)
	}
	s.done = s.done[:s.nNodes]

	// Count arcs per node, prefix-sum, then fill in edge order so each
	// node's arc list matches the append-built residual exactly.
	for i := range s.arcStart {
		s.arcStart[i] = 0
	}
	for i := 0; i < s.nEdges; i++ {
		e := &g.edges[i]
		s.arcStart[e.From+1]++
		s.arcStart[e.To+1]++
		s.head[2*i] = e.To
		s.head[2*i+1] = e.From
	}
	for u := 0; u < s.nNodes; u++ {
		s.arcStart[u+1] += s.arcStart[u]
	}
	// next[u] tracks the fill cursor; reuse prevArc's backing? No —
	// prevArc is per-node too but int32, reuse would alias arcStart
	// semantics. A small local slice is fine: build runs once per
	// structure change, not per solve.
	next := make([]int32, s.nNodes)
	copy(next, s.arcStart[:s.nNodes])
	for i := 0; i < s.nEdges; i++ {
		e := &g.edges[i]
		s.arcs[next[e.From]] = int32(2 * i)
		next[e.From]++
		s.arcs[next[e.To]] = int32(2*i + 1)
		next[e.To]++
	}
}

// grow returns buf resized to n, reallocating only when capacity is
// insufficient.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// mcfItem is a priority-queue entry of the solver's Dijkstra phase.
type mcfItem struct {
	node NodeID
	dist float64
}

// pushPQ appends an item and sifts it up, replicating container/heap's
// Push semantics (strict-less comparisons, so equal keys keep insertion
// layering) to preserve pop order bit-for-bit.
func (s *MCFSolver) pushPQ(node NodeID, d float64) {
	h := append(s.pq, mcfItem{node: node, dist: d})
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	s.pq = h
}

// popPQ removes and returns the minimum item, replicating
// container/heap's Pop: swap root and last, sift the root down over the
// shortened heap (left child wins ties), return the displaced last.
func (s *MCFSolver) popPQ() mcfItem {
	h := s.pq
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	s.pq = h[:n]
	return it
}

// negRCTol is the slack below zero tolerated for a reduced cost before
// the potential invariant is declared broken. The old fixed -1e-6
// threshold misfires on large graphs with high-cost (fake) edges:
// potentials legitimately accumulate to ~1e9 and beyond over many
// phases, and the float64 rounding of cost + pot[u] - pot[v] is
// proportional to those magnitudes, not absolute. The tolerance
// therefore scales with the operands (1e-12 relative — still ~1000×
// the accumulated rounding error, and far below any real cost) on top
// of the old absolute floor.
func negRCTol(cost, potU, potV float64) float64 {
	s := cost
	if s < 0 {
		s = -s
	}
	if potU < 0 {
		s -= potU
	} else {
		s += potU
	}
	if potV < 0 {
		s -= potV
	} else {
		s += potV
	}
	return 1e-6 + 1e-12*s
}

// Solve computes a minimum-cost flow of up to limit units from src to
// dst, exactly as Graph.MinCostFlow does (same algorithm, same
// tie-breaking, bit-identical results).
//
// fwdCap, when non-nil, overrides the forward capacity of every edge
// (indexed by EdgeID) — this is how the warm TE allocator tracks
// residual capacity across demands without cloning the graph. Nil means
// the graph's own capacities. Costs always come from the graph.
//
// flowOut, when non-nil, receives the per-edge net flow (it must have
// length NumEdges) and is aliased as the result's EdgeFlow, so the
// steady-state solve allocates nothing. Nil allocates a fresh slice.
func (s *MCFSolver) Solve(src, dst NodeID, limit float64, fwdCap, flowOut []float64) (FlowResult, error) {
	g := s.g
	if s.nNodes != g.NumNodes() || s.nEdges != g.NumEdges() {
		s.build()
	}
	if !g.HasNode(src) || !g.HasNode(dst) {
		return FlowResult{}, fmt.Errorf("graph: MinCostFlow endpoints invalid: %d -> %d", int(src), int(dst))
	}
	if flowOut == nil {
		flowOut = make([]float64, s.nEdges)
	} else if len(flowOut) != s.nEdges {
		return FlowResult{}, fmt.Errorf("graph: flowOut has %d entries for %d edges", len(flowOut), s.nEdges)
	}
	if src == dst {
		for i := range flowOut {
			flowOut[i] = 0
		}
		return FlowResult{EdgeFlow: flowOut}, nil
	}
	if limit < 0 || math.IsNaN(limit) {
		return FlowResult{}, fmt.Errorf("graph: MinCostFlow limit %v invalid", limit)
	}
	if fwdCap != nil && len(fwdCap) != s.nEdges {
		return FlowResult{}, fmt.Errorf("graph: fwdCap has %d entries for %d edges", len(fwdCap), s.nEdges)
	}

	// Load this solve's capacities and costs into the residual arcs.
	for i := 0; i < s.nEdges; i++ {
		c := g.edges[i].Capacity
		if fwdCap != nil {
			c = fwdCap[i]
		}
		s.rcap[2*i] = c
		s.rcap[2*i+1] = 0
		s.cost[2*i] = g.edges[i].Cost
		s.cost[2*i+1] = -g.edges[i].Cost
	}

	// Initial potentials via Bellman-Ford to accommodate negative
	// costs — same relaxation order and tolerance as Graph.BellmanFord,
	// reading the loaded forward capacities.
	if neg := s.bellmanFord(src); neg {
		return FlowResult{}, fmt.Errorf("graph: negative-cost cycle reachable from source")
	}
	for i := range s.pot {
		if math.IsInf(s.pot[i], 1) {
			s.pot[i] = 0 // unreachable; potential unused
		}
	}

	var total, totalCost float64
	var stats SolveStats

	for total+Eps < limit {
		// Dijkstra on reduced costs.
		stats.Phases++
		for i := range s.dist {
			s.dist[i] = math.Inf(1)
			s.prevArc[i] = -1
			s.done[i] = false
		}
		s.dist[src] = 0
		s.pq = s.pq[:0]
		s.pushPQ(src, 0)
		for len(s.pq) > 0 {
			it := s.popPQ()
			u := it.node
			stats.Pops++
			if s.done[u] {
				continue
			}
			s.done[u] = true
			for k := s.arcStart[u]; k < s.arcStart[u+1]; k++ {
				a := s.arcs[k]
				if s.rcap[a] <= Eps {
					continue
				}
				stats.Relaxations++
				v := s.head[a]
				rc := s.cost[a] + s.pot[u] - s.pot[v]
				if rc < 0 {
					// Numerical slack: clamp tiny negatives, at a
					// tolerance scaled to the operand magnitudes.
					if rc < -negRCTol(s.cost[a], s.pot[u], s.pot[v]) {
						return FlowResult{}, fmt.Errorf("graph: negative reduced cost %v (potential invariant broken)", rc)
					}
					rc = 0
				}
				if nd := s.dist[u] + rc; nd+Eps < s.dist[v] {
					s.dist[v] = nd
					s.prevArc[v] = a
					s.pushPQ(v, nd)
				}
			}
		}
		if math.IsInf(s.dist[dst], 1) {
			break // no augmenting path left
		}
		updatePotentials(s.pot, s.dist, s.dist[dst])
		// Invariant: potentials advance by at most dist[dst] per phase
		// and must stay finite and within the problem's scale. Catch
		// unbounded growth loudly instead of corrupting reduced costs.
		for i, p := range s.pot {
			if !(p >= -potBound && p <= potBound) { // also catches NaN
				return FlowResult{}, fmt.Errorf("graph: potential %v at node %d out of bounds (unbounded growth)", p, i)
			}
		}
		// Find bottleneck along the path.
		push := limit - total
		for v := dst; v != src; {
			a := s.prevArc[v]
			if s.rcap[a] < push {
				push = s.rcap[a]
			}
			v = s.head[a^1]
		}
		if push <= Eps {
			break
		}
		// Apply.
		for v := dst; v != src; {
			a := s.prevArc[v]
			s.rcap[a] -= push
			s.rcap[a^1] += push
			totalCost += push * s.cost[a]
			v = s.head[a^1]
		}
		total += push
		stats.Augmentations++
	}

	for i := 0; i < s.nEdges; i++ {
		// Flow on edge i equals the capacity accumulated on its
		// backward arc.
		flowOut[i] = s.rcap[2*i+1]
	}
	return FlowResult{Value: total, EdgeFlow: flowOut, Cost: totalCost, Stats: stats}, nil
}

// bellmanFord computes shortest distances by cost from src into s.pot
// over arcs with positive loaded forward capacity, reporting whether a
// negative cycle reachable from src exists. It mirrors Graph.BellmanFord
// (same iteration order, same Eps tolerances) but reads the loaded
// residual capacities so fwdCap overrides apply.
func (s *MCFSolver) bellmanFord(src NodeID) (negCycle bool) {
	dist := s.pot
	n := s.nNodes
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for i := 0; i < s.nEdges; i++ {
			if s.rcap[2*i] <= Eps {
				continue
			}
			e := &s.g.edges[i]
			if math.IsInf(dist[e.From], 1) {
				continue
			}
			if nd := dist[e.From] + e.Cost; nd+Eps < dist[e.To] {
				dist[e.To] = nd
				changed = true
				if iter == n-1 {
					return true
				}
			}
		}
		if !changed {
			break
		}
	}
	return false
}
