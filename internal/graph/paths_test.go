package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// diamond builds: a->b->d (weight 1+1), a->c->d (weight 2+2), a->d (weight 10).
func diamond(t *testing.T) (*Graph, [4]NodeID, [5]EdgeID) {
	t.Helper()
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	e0 := g.AddEdge(Edge{From: a, To: b, Capacity: 10, Weight: 1})
	e1 := g.AddEdge(Edge{From: b, To: d, Capacity: 10, Weight: 1})
	e2 := g.AddEdge(Edge{From: a, To: c, Capacity: 10, Weight: 2})
	e3 := g.AddEdge(Edge{From: c, To: d, Capacity: 10, Weight: 2})
	e4 := g.AddEdge(Edge{From: a, To: d, Capacity: 10, Weight: 10})
	return g, [4]NodeID{a, b, c, d}, [5]EdgeID{e0, e1, e2, e3, e4}
}

func TestBFSShortestPath(t *testing.T) {
	g, n, e := diamond(t)
	p, ok := g.ShortestPathBFS(n[0], n[3])
	if !ok {
		t.Fatal("no path found")
	}
	// BFS minimizes hops: the direct a->d edge (1 hop).
	if p.Len() != 1 || p.Edges[0] != e[4] {
		t.Fatalf("BFS path = %+v, want direct edge", p)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, ok := g.ShortestPathBFS(a, b); ok {
		t.Fatal("found path in edgeless graph")
	}
}

func TestBFSSelf(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	p, ok := g.ShortestPathBFS(a, a)
	if !ok || p.Len() != 0 {
		t.Fatalf("self path = %+v, %v", p, ok)
	}
}

func TestBFSSkipsZeroCapacity(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 0})
	if _, ok := g.ShortestPathBFS(a, b); ok {
		t.Fatal("BFS used a zero-capacity edge")
	}
}

func TestBFSInvalidNodes(t *testing.T) {
	g := New()
	if _, ok := g.ShortestPathBFS(0, 1); ok {
		t.Fatal("BFS on empty graph returned a path")
	}
}

func TestDijkstraShortestPath(t *testing.T) {
	g, n, e := diamond(t)
	p, w, ok := g.ShortestPathDijkstra(n[0], n[3])
	if !ok {
		t.Fatal("no path found")
	}
	if w != 2 {
		t.Fatalf("weight = %v, want 2", w)
	}
	if p.Len() != 2 || p.Edges[0] != e[0] || p.Edges[1] != e[1] {
		t.Fatalf("path = %+v, want a->b->d", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if _, _, ok := g.ShortestPathDijkstra(a, b); ok {
		t.Fatal("found path in edgeless graph")
	}
}

func TestDijkstraZeroWeights(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Weight: 0})
	g.AddEdge(Edge{From: b, To: c, Capacity: 1, Weight: 0})
	_, w, ok := g.ShortestPathDijkstra(a, c)
	if !ok || w != 0 {
		t.Fatalf("w = %v, ok = %v", w, ok)
	}
}

func TestBellmanFordMatchesDijkstraOnNonNegative(t *testing.T) {
	// Random graph, compare distances where Cost == Weight >= 0.
	r := rng.New(5)
	g := New()
	const n = 30
	g.AddNodes(n)
	for i := 0; i < 150; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u == v {
			continue
		}
		w := r.Uniform(0.1, 5)
		g.AddEdge(Edge{From: u, To: v, Capacity: 1, Weight: w, Cost: w})
	}
	distBF, neg := g.BellmanFord(0)
	if neg {
		t.Fatal("negative cycle in non-negative graph")
	}
	for v := 0; v < n; v++ {
		_, dw, ok := g.ShortestPathDijkstra(0, NodeID(v))
		if !ok {
			if !math.IsInf(distBF[v], 1) {
				t.Fatalf("node %d: dijkstra unreachable, BF %v", v, distBF[v])
			}
			continue
		}
		if math.Abs(dw-distBF[v]) > 1e-6 {
			t.Fatalf("node %d: dijkstra %v != bellman-ford %v", v, dw, distBF[v])
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Cost: -2})
	g.AddEdge(Edge{From: b, To: a, Capacity: 1, Cost: 1})
	if _, neg := g.BellmanFord(a); !neg {
		t.Fatal("negative cycle not detected")
	}
}

func TestBellmanFordNegativeEdgeNoCycle(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Cost: 5})
	g.AddEdge(Edge{From: b, To: c, Capacity: 1, Cost: -3})
	dist, neg := g.BellmanFord(a)
	if neg {
		t.Fatal("false negative cycle")
	}
	if dist[c] != 2 {
		t.Fatalf("dist[c] = %v, want 2", dist[c])
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g, n, _ := diamond(t)
	paths := g.KShortestPaths(n[0], n[3], 5)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wants := []float64{2, 4, 10}
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		if w := p.WeightOn(g); w != wants[i] {
			t.Fatalf("path %d weight = %v, want %v", i, w, wants[i])
		}
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	// Graph with a cycle; k-shortest must not revisit nodes.
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: b, To: a, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: b, To: c, Capacity: 1, Weight: 1})
	paths := g.KShortestPaths(a, c, 10)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (loopless)", len(paths))
	}
	for _, p := range paths {
		seen := map[NodeID]bool{}
		for _, nd := range p.Nodes {
			if seen[nd] {
				t.Fatalf("path revisits node %d", int(nd))
			}
			seen[nd] = true
		}
	}
}

func TestKShortestPathsAscending(t *testing.T) {
	r := rng.New(11)
	g := New()
	const n = 15
	g.AddNodes(n)
	for i := 0; i < 60; i++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(Edge{From: u, To: v, Capacity: 1, Weight: r.Uniform(1, 10)})
	}
	paths := g.KShortestPaths(0, NodeID(n-1), 8)
	for i := 1; i < len(paths); i++ {
		if paths[i].WeightOn(g)+1e-9 < paths[i-1].WeightOn(g) {
			t.Fatalf("paths not ascending: %v then %v", paths[i-1].WeightOn(g), paths[i].WeightOn(g))
		}
	}
	// All distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if equalEdges(paths[i].Edges, paths[j].Edges) {
				t.Fatal("duplicate paths returned")
			}
		}
	}
}

func TestKShortestPathsParallelEdges(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Weight: 1})
	g.AddEdge(Edge{From: a, To: b, Capacity: 1, Weight: 2})
	paths := g.KShortestPaths(a, b, 5)
	if len(paths) != 2 {
		t.Fatalf("got %d paths over parallel edges, want 2", len(paths))
	}
}

func TestKShortestPathsZeroK(t *testing.T) {
	g, n, _ := diamond(t)
	if paths := g.KShortestPaths(n[0], n[3], 0); paths != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if paths := g.KShortestPaths(a, b, 3); paths != nil {
		t.Fatal("disconnected should return nil")
	}
}

func TestReachable(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	d := g.AddNode("d")
	g.AddEdge(Edge{From: a, To: b, Capacity: 1})
	g.AddEdge(Edge{From: b, To: c, Capacity: 1})
	g.AddEdge(Edge{From: c, To: d, Capacity: 0}) // dead edge
	seen := g.Reachable(a)
	if !seen[a] || !seen[b] || !seen[c] {
		t.Fatalf("reachable set wrong: %v", seen)
	}
	if seen[d] {
		t.Fatal("reached through zero-capacity edge")
	}
}
