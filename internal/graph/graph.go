// Package graph provides the directed-multigraph substrate and the flow
// algorithms the traffic-engineering layer is built on: BFS/Dijkstra
// shortest paths, Yen's k-shortest paths, Dinic max-flow, and
// successive-shortest-path min-cost max-flow.
//
// The paper's abstraction (§4) requires *parallel edges*: a fake link is
// added alongside each upgradable physical link, so everything here is a
// multigraph keyed by EdgeID rather than (from, to) pairs.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a vertex. IDs are dense: 0..NumNodes()-1.
type NodeID int

// EdgeID identifies a directed edge. IDs are dense: 0..NumEdges()-1.
type EdgeID int

// Invalid sentinel IDs.
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
)

// Eps is the tolerance used by the flow algorithms when comparing
// float64 capacities and flows.
const Eps = 1e-9

// Edge is one directed edge of the multigraph.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	// Capacity is the maximum flow the edge can carry (Gbps in the WAN
	// setting).
	Capacity float64
	// Cost is the per-unit-of-flow penalty used by min-cost max-flow.
	// The paper's abstraction encodes the capacity-change penalty here.
	Cost float64
	// Weight is the routing metric (IGP weight / hop length) used by
	// the shortest-path and k-shortest-path routines.
	Weight float64
	// Label is an optional annotation. The core package tags fake edges
	// here.
	Label string
}

// Graph is a directed multigraph. The zero value is an empty graph
// ready to use.
type Graph struct {
	names []string
	edges []Edge
	out   [][]EdgeID
	in    [][]EdgeID
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode adds a vertex with the given display name and returns its ID.
func (g *Graph) AddNode(name string) NodeID {
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddNodes adds n anonymous vertices and returns the ID of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.names))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", int(first)+i))
	}
	return first
}

// AddEdge adds a directed edge and returns its ID. It panics if either
// endpoint does not exist or the capacity is negative: both indicate a
// construction bug, not a runtime condition.
func (g *Graph) AddEdge(e Edge) EdgeID {
	if !g.HasNode(e.From) || !g.HasNode(e.To) {
		panic(fmt.Sprintf("graph: AddEdge with unknown endpoint %d->%d (have %d nodes)", e.From, e.To, len(g.names)))
	}
	if e.Capacity < 0 {
		panic(fmt.Sprintf("graph: negative capacity %v", e.Capacity))
	}
	if math.IsNaN(e.Capacity) || math.IsNaN(e.Cost) || math.IsNaN(e.Weight) {
		panic("graph: NaN edge attribute")
	}
	e.ID = EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], e.ID)
	g.in[e.To] = append(g.in[e.To], e.ID)
	return e.ID
}

// HasNode reports whether id is a valid node.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.names) }

// HasEdge reports whether id is a valid edge.
func (g *Graph) HasEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NodeName returns the display name of a node.
func (g *Graph) NodeName(id NodeID) string {
	if !g.HasNode(id) {
		return fmt.Sprintf("invalid(%d)", int(id))
	}
	return g.names[id]
}

// Edge returns a copy of the edge with the given ID. It panics on an
// invalid ID.
func (g *Graph) Edge(id EdgeID) Edge {
	if !g.HasEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", int(id)))
	}
	return g.edges[id]
}

// SetCapacity updates an edge's capacity in place.
func (g *Graph) SetCapacity(id EdgeID, c float64) {
	if !g.HasEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", int(id)))
	}
	if c < 0 || math.IsNaN(c) {
		panic(fmt.Sprintf("graph: invalid capacity %v", c))
	}
	g.edges[id].Capacity = c
}

// SetCost updates an edge's per-unit cost in place.
func (g *Graph) SetCost(id EdgeID, c float64) {
	if !g.HasEdge(id) {
		panic(fmt.Sprintf("graph: invalid edge id %d", int(id)))
	}
	if math.IsNaN(c) {
		panic("graph: NaN cost")
	}
	g.edges[id].Cost = c
}

// Out returns the IDs of edges leaving node n. The returned slice must
// not be modified.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the IDs of edges entering node n. The returned slice must
// not be modified.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]EdgeID(nil), g.out[i]...)
	}
	for i := range g.in {
		c.in[i] = append([]EdgeID(nil), g.in[i]...)
	}
	return c
}

// WithoutEdges returns a copy of the graph with the given edges removed.
// Edge IDs are reassigned densely; the mapping old→new is returned
// (NoEdge for removed edges). The paper's abstraction removes fake edges
// when SNR drops (§4.2), which uses this.
func (g *Graph) WithoutEdges(remove map[EdgeID]bool) (*Graph, []EdgeID) {
	c := &Graph{
		names: append([]string(nil), g.names...),
		out:   make([][]EdgeID, len(g.out)),
		in:    make([][]EdgeID, len(g.in)),
	}
	mapping := make([]EdgeID, len(g.edges))
	for i := range mapping {
		mapping[i] = NoEdge
	}
	for _, e := range g.edges {
		if remove[e.ID] {
			continue
		}
		old := e.ID
		mapping[old] = c.AddEdge(e)
	}
	return c, mapping
}

// TotalCapacity sums capacity over all edges.
func (g *Graph) TotalCapacity() float64 {
	var t float64
	for _, e := range g.edges {
		t += e.Capacity
	}
	return t
}

// Path is a sequence of edge IDs forming a walk. Nodes visits one more
// element than Edges.
type Path struct {
	Edges []EdgeID
	Nodes []NodeID
}

// Len returns the number of edges (hops).
func (p Path) Len() int { return len(p.Edges) }

// WeightOn returns the total Weight of the path's edges on g.
func (p Path) WeightOn(g *Graph) float64 {
	var w float64
	for _, id := range p.Edges {
		w += g.Edge(id).Weight
	}
	return w
}

// Validate checks that the path is a connected walk on g.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) != len(p.Edges)+1 {
		return fmt.Errorf("graph: path has %d nodes for %d edges", len(p.Nodes), len(p.Edges))
	}
	for i, id := range p.Edges {
		if !g.HasEdge(id) {
			return fmt.Errorf("graph: path references unknown edge %d", int(id))
		}
		e := g.Edge(id)
		if e.From != p.Nodes[i] || e.To != p.Nodes[i+1] {
			return fmt.Errorf("graph: edge %d (%d->%d) does not connect path nodes %d->%d",
				int(id), int(e.From), int(e.To), int(p.Nodes[i]), int(p.Nodes[i+1]))
		}
	}
	return nil
}
