package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// ShortestPathBFS returns a minimum-hop path from src to dst, or ok =
// false if dst is unreachable. Edges with zero capacity are skipped.
func (g *Graph) ShortestPathBFS(src, dst NodeID) (Path, bool) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return Path{}, false
	}
	if src == dst {
		return Path{Nodes: []NodeID{src}}, true
	}
	prevEdge := make([]EdgeID, g.NumNodes())
	for i := range prevEdge {
		prevEdge[i] = NoEdge
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(u) {
			e := g.edges[id]
			if e.Capacity <= Eps || visited[e.To] {
				continue
			}
			visited[e.To] = true
			prevEdge[e.To] = id
			if e.To == dst {
				return g.reconstruct(src, dst, prevEdge), true
			}
			queue = append(queue, e.To)
		}
	}
	return Path{}, false
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	node NodeID
	dist float64
}

type dijkstraPQ []dijkstraItem

func (q dijkstraPQ) Len() int            { return len(q) }
func (q dijkstraPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q dijkstraPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *dijkstraPQ) Push(x interface{}) { *q = append(*q, x.(dijkstraItem)) }
func (q *dijkstraPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPathDijkstra returns a minimum-Weight path from src to dst,
// skipping zero-capacity edges. All edge weights must be non-negative.
func (g *Graph) ShortestPathDijkstra(src, dst NodeID) (Path, float64, bool) {
	return g.ShortestPathDijkstraStats(src, dst, nil)
}

// ShortestPathDijkstraStats is ShortestPathDijkstra with work
// accounting: when stats is non-nil, every queue pop and every
// positive-capacity edge examined is counted into it (Pops and
// Relaxations; the caller owns Phases).
func (g *Graph) ShortestPathDijkstraStats(src, dst NodeID, stats *SolveStats) (Path, float64, bool) {
	dist, prevEdge := g.dijkstraAll(src, func(e Edge) (float64, bool) {
		if e.Capacity <= Eps {
			return 0, false
		}
		return e.Weight, true
	}, stats)
	if math.IsInf(dist[dst], 1) {
		return Path{}, 0, false
	}
	return g.reconstruct(src, dst, prevEdge), dist[dst], true
}

// dijkstraAll runs Dijkstra from src using lengthOf to derive each
// edge's length (or skip it). It panics on a negative length. A non-nil
// stats receives Pops/Relaxations work counts.
func (g *Graph) dijkstraAll(src NodeID, lengthOf func(Edge) (float64, bool), stats *SolveStats) ([]float64, []EdgeID) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevEdge := make([]EdgeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = NoEdge
	}
	dist[src] = 0
	pq := &dijkstraPQ{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(dijkstraItem)
		u := it.node
		if stats != nil {
			stats.Pops++
		}
		if done[u] {
			continue
		}
		done[u] = true
		for _, id := range g.Out(u) {
			e := g.edges[id]
			l, ok := lengthOf(e)
			if !ok {
				continue
			}
			if stats != nil {
				stats.Relaxations++
			}
			if l < -Eps {
				panic(fmt.Sprintf("graph: negative edge length %v on edge %d", l, int(id)))
			}
			if l < 0 {
				l = 0
			}
			if nd := dist[u] + l; nd+Eps < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = id
				heap.Push(pq, dijkstraItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, prevEdge
}

// reconstruct builds a Path from the predecessor-edge array.
func (g *Graph) reconstruct(src, dst NodeID, prevEdge []EdgeID) Path {
	var rev []EdgeID
	at := dst
	for at != src {
		id := prevEdge[at]
		if id == NoEdge {
			return Path{}
		}
		rev = append(rev, id)
		at = g.edges[id].From
	}
	p := Path{Nodes: []NodeID{src}}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Edges = append(p.Edges, rev[i])
		p.Nodes = append(p.Nodes, g.edges[rev[i]].To)
	}
	return p
}

// BellmanFord computes single-source shortest distances by Cost
// (allowing negative costs) over edges with positive capacity. It
// returns the distance array and reports whether a negative cycle
// reachable from src exists.
func (g *Graph) BellmanFord(src NodeID) (dist []float64, negCycle bool) {
	n := g.NumNodes()
	dist = make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.edges {
			if e.Capacity <= Eps || math.IsInf(dist[e.From], 1) {
				continue
			}
			if nd := dist[e.From] + e.Cost; nd+Eps < dist[e.To] {
				dist[e.To] = nd
				changed = true
				if iter == n-1 {
					return dist, true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist, false
}

// KShortestPaths returns up to k loopless minimum-Weight paths from src
// to dst in ascending weight order (Yen's algorithm). Zero-capacity
// edges are skipped. SWAN-style TE pre-computes k paths per demand pair
// with exactly this.
func (g *Graph) KShortestPaths(src, dst NodeID, k int) []Path {
	return g.KShortestPathsStats(src, dst, k, nil)
}

// KShortestPathsStats is KShortestPaths with work accounting: a non-nil
// stats receives one Phase per Dijkstra run (initial plus every spur
// search) and the pooled Pops/Relaxations across them.
func (g *Graph) KShortestPathsStats(src, dst NodeID, k int, stats *SolveStats) []Path {
	if k <= 0 {
		return nil
	}
	if stats != nil {
		stats.Phases++
	}
	first, _, ok := g.ShortestPathDijkstraStats(src, dst, stats)
	if !ok {
		return nil
	}
	result := []Path{first}
	var candidates []Path

	for len(result) < k {
		prev := result[len(result)-1]
		// For each node in the previous path except the last, branch.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootEdges := prev.Edges[:i]

			banned := make(map[EdgeID]bool)
			// Ban edges that would recreate an already-found path with
			// the same root.
			for _, p := range result {
				if len(p.Edges) > i && equalEdges(p.Edges[:i], rootEdges) {
					banned[p.Edges[i]] = true
				}
			}
			// Ban root nodes (loopless requirement).
			bannedNodes := make(map[NodeID]bool)
			for _, nd := range prev.Nodes[:i] {
				bannedNodes[nd] = true
			}

			if stats != nil {
				stats.Phases++
			}
			spurDist, spurPrev := g.dijkstraAll(spurNode, func(e Edge) (float64, bool) {
				if e.Capacity <= Eps || banned[e.ID] || bannedNodes[e.From] || bannedNodes[e.To] {
					return 0, false
				}
				return e.Weight, true
			}, stats)
			if math.IsInf(spurDist[dst], 1) {
				continue
			}
			spur := g.reconstruct(spurNode, dst, spurPrev)
			total := Path{
				Edges: append(append([]EdgeID(nil), rootEdges...), spur.Edges...),
				Nodes: append(append([]NodeID(nil), prev.Nodes[:i]...), spur.Nodes...),
			}
			if !containsPath(candidates, total) && !containsPath(result, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			wa, wb := candidates[a].WeightOn(g), candidates[b].WeightOn(g)
			if wa != wb { //nolint:nofloateq // comparator tie-break: tolerance would break strict weak ordering
				return wa < wb
			}
			return candidates[a].Len() < candidates[b].Len()
		})
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

func equalEdges(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, p Path) bool {
	for _, q := range ps {
		if equalEdges(q.Edges, p.Edges) {
			return true
		}
	}
	return false
}

// Reachable returns the set of nodes reachable from src over
// positive-capacity edges.
func (g *Graph) Reachable(src NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{src: true}
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.Out(u) {
			e := g.edges[id]
			if e.Capacity <= Eps || seen[e.To] {
				continue
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return seen
}
