package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// checkConservation verifies capacity constraints and flow conservation
// for an s-t flow.
func checkConservation(t *testing.T, g *Graph, src, dst NodeID, res FlowResult) {
	t.Helper()
	if len(res.EdgeFlow) != g.NumEdges() {
		t.Fatalf("EdgeFlow length %d for %d edges", len(res.EdgeFlow), g.NumEdges())
	}
	net := make([]float64, g.NumNodes())
	for id, f := range res.EdgeFlow {
		e := g.Edge(EdgeID(id))
		if f < -1e-6 {
			t.Fatalf("negative flow %v on edge %d", f, id)
		}
		if f > e.Capacity+1e-6 {
			t.Fatalf("flow %v exceeds capacity %v on edge %d", f, e.Capacity, id)
		}
		net[e.From] -= f
		net[e.To] += f
	}
	for n, v := range net {
		if NodeID(n) == src || NodeID(n) == dst {
			continue
		}
		if math.Abs(v) > 1e-6 {
			t.Fatalf("conservation violated at node %d: %v", n, v)
		}
	}
	if math.Abs(net[dst]-res.Value) > 1e-6 {
		t.Fatalf("sink imbalance: net %v vs value %v", net[dst], res.Value)
	}
}

func TestMaxFlowSimple(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 7})
	res, err := g.MaxFlow(a, b, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7 {
		t.Fatalf("value = %v", res.Value)
	}
	checkConservation(t, g, a, b, res)
}

func TestMaxFlowClassic(t *testing.T) {
	// The classic CLRS example with max flow 23.
	g := New()
	s := g.AddNode("s")
	v1, v2, v3, v4 := g.AddNode("v1"), g.AddNode("v2"), g.AddNode("v3"), g.AddNode("v4")
	tt := g.AddNode("t")
	g.AddEdge(Edge{From: s, To: v1, Capacity: 16})
	g.AddEdge(Edge{From: s, To: v2, Capacity: 13})
	g.AddEdge(Edge{From: v1, To: v3, Capacity: 12})
	g.AddEdge(Edge{From: v2, To: v1, Capacity: 4})
	g.AddEdge(Edge{From: v3, To: v2, Capacity: 9})
	g.AddEdge(Edge{From: v2, To: v4, Capacity: 14})
	g.AddEdge(Edge{From: v4, To: v3, Capacity: 7})
	g.AddEdge(Edge{From: v3, To: tt, Capacity: 20})
	g.AddEdge(Edge{From: v4, To: tt, Capacity: 4})
	res, err := g.MaxFlow(s, tt, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-23) > 1e-9 {
		t.Fatalf("value = %v, want 23", res.Value)
	}
	checkConservation(t, g, s, tt, res)
}

func TestMaxFlowLimit(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 100})
	res, err := g.MaxFlow(a, b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-30) > 1e-9 {
		t.Fatalf("limited value = %v", res.Value)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	res, err := g.MaxFlow(a, b, math.Inf(1))
	if err != nil || res.Value != 0 {
		t.Fatalf("value = %v, err = %v", res.Value, err)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if _, err := g.MaxFlow(a, 7, math.Inf(1)); err == nil {
		t.Fatal("invalid node accepted")
	}
	if _, err := g.MaxFlow(a, a, -1); err != nil {
		// src==dst returns early even with bad limit — acceptable; skip.
		t.Log("src==dst early return")
	}
	b := g.AddNode("b")
	if _, err := g.MaxFlow(a, b, -1); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, err := g.MaxFlow(a, b, math.NaN()); err == nil {
		t.Fatal("NaN limit accepted")
	}
}

func TestMaxFlowSelf(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	res, err := g.MaxFlow(a, a, math.Inf(1))
	if err != nil || res.Value != 0 {
		t.Fatalf("self flow = %v, err %v", res.Value, err)
	}
}

func TestMaxFlowMinCutRandom(t *testing.T) {
	// Property: max flow equals min cut (verified via reachability in
	// the residual = s-side of a cut; sum of crossing capacities).
	r := rng.New(21)
	for trial := 0; trial < 20; trial++ {
		g := New()
		const n = 12
		g.AddNodes(n)
		for i := 0; i < 50; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 10)})
		}
		src, dst := NodeID(0), NodeID(n-1)
		res, err := g.MaxFlow(src, dst, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		checkConservation(t, g, src, dst, res)
		// Build residual reachability.
		resid := g.Clone()
		for id, f := range res.EdgeFlow {
			resid.SetCapacity(EdgeID(id), g.Edge(EdgeID(id)).Capacity-f)
		}
		// Add reverse arcs for pushed flow.
		for id, f := range res.EdgeFlow {
			if f > Eps {
				e := g.Edge(EdgeID(id))
				resid.AddEdge(Edge{From: e.To, To: e.From, Capacity: f})
			}
		}
		sSide := resid.Reachable(src)
		if sSide[dst] {
			t.Fatal("augmenting path remains after max flow")
		}
		var cut float64
		for _, e := range g.Edges() {
			if sSide[e.From] && !sSide[e.To] {
				cut += e.Capacity
			}
		}
		if math.Abs(cut-res.Value) > 1e-6 {
			t.Fatalf("trial %d: max flow %v != min cut %v", trial, res.Value, cut)
		}
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	cheap1 := g.AddEdge(Edge{From: a, To: b, Capacity: 10, Cost: 1})
	cheap2 := g.AddEdge(Edge{From: b, To: c, Capacity: 10, Cost: 1})
	exp := g.AddEdge(Edge{From: a, To: c, Capacity: 10, Cost: 100})
	res, err := g.MinCostFlow(a, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 10 {
		t.Fatalf("value = %v", res.Value)
	}
	if res.EdgeFlow[cheap1] != 10 || res.EdgeFlow[cheap2] != 10 || res.EdgeFlow[exp] != 0 {
		t.Fatalf("flow did not prefer cheap path: %v", res.EdgeFlow)
	}
	if math.Abs(res.Cost-20) > 1e-9 {
		t.Fatalf("cost = %v, want 20", res.Cost)
	}
}

func TestMinCostFlowSpillsToExpensive(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 5, Cost: 1})
	g.AddEdge(Edge{From: a, To: b, Capacity: 5, Cost: 3})
	res, err := g.MinCostFlow(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 8 {
		t.Fatalf("value = %v", res.Value)
	}
	if math.Abs(res.Cost-(5*1+3*3)) > 1e-9 {
		t.Fatalf("cost = %v, want 14", res.Cost)
	}
}

func TestMinCostMaxFlowEqualsMaxFlow(t *testing.T) {
	// Property: min-cost max flow ships exactly the max-flow value.
	r := rng.New(31)
	for trial := 0; trial < 15; trial++ {
		g := New()
		const n = 10
		g.AddNodes(n)
		for i := 0; i < 40; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 8), Cost: r.Uniform(0, 5)})
		}
		src, dst := NodeID(0), NodeID(n-1)
		mf, err := g.MaxFlowValue(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		mcmf, err := g.MinCostMaxFlow(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mf-mcmf.Value) > 1e-6 {
			t.Fatalf("trial %d: MCMF value %v != max flow %v", trial, mcmf.Value, mf)
		}
		checkConservation(t, g, src, dst, mcmf)
	}
}

func TestMinCostFlowOptimalityAgainstBruteForce(t *testing.T) {
	// Two-path network where optimum is computable by hand for any
	// demand level.
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(Edge{From: a, To: b, Capacity: 4, Cost: 2})
	g.AddEdge(Edge{From: a, To: b, Capacity: 6, Cost: 5})
	for _, tc := range []struct{ demand, wantCost float64 }{
		{2, 4}, {4, 8}, {5, 13}, {10, 38},
	} {
		res, err := g.MinCostFlow(a, b, tc.demand)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-tc.wantCost) > 1e-9 {
			t.Fatalf("demand %v: cost = %v, want %v", tc.demand, res.Cost, tc.wantCost)
		}
	}
}

func TestMinCostFlowNegativeEdge(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 5, Cost: 4})
	g.AddEdge(Edge{From: b, To: c, Capacity: 5, Cost: -2})
	res, err := g.MinCostFlow(a, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 || math.Abs(res.Cost-10) > 1e-9 {
		t.Fatalf("value %v cost %v", res.Value, res.Cost)
	}
}

func TestMinCostFlowNegativeCycleRejected(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 5, Cost: -3})
	g.AddEdge(Edge{From: b, To: a, Capacity: 5, Cost: 1})
	g.AddEdge(Edge{From: a, To: c, Capacity: 5, Cost: 1})
	if _, err := g.MinCostFlow(a, c, 5); err == nil {
		t.Fatal("negative cycle not rejected")
	}
}

func TestMinCostFlowCostMatchesEdgeFlow(t *testing.T) {
	r := rng.New(41)
	g := New()
	const n = 8
	g.AddNodes(n)
	for i := 0; i < 30; i++ {
		u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if u == v {
			continue
		}
		g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 6), Cost: r.Uniform(0, 4)})
	}
	res, err := g.MinCostMaxFlow(0, NodeID(n-1))
	if err != nil {
		t.Fatal(err)
	}
	var recomputed float64
	for id, f := range res.EdgeFlow {
		recomputed += f * g.Edge(EdgeID(id)).Cost
	}
	if math.Abs(recomputed-res.Cost) > 1e-6 {
		t.Fatalf("cost %v != recomputed %v", res.Cost, recomputed)
	}
}

func TestMinCostFlowErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if _, err := g.MinCostFlow(a, 9, 1); err == nil {
		t.Fatal("invalid node accepted")
	}
	b := g.AddNode("b")
	if _, err := g.MinCostFlow(a, b, -1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestDecomposeFlowSimple(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(Edge{From: a, To: b, Capacity: 10})
	g.AddEdge(Edge{From: b, To: c, Capacity: 10})
	g.AddEdge(Edge{From: a, To: c, Capacity: 10})
	res, _ := g.MaxFlow(a, c, math.Inf(1))
	paths, err := g.DecomposeFlow(a, c, res.EdgeFlow)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, pf := range paths {
		if err := pf.Path.Validate(g); err != nil {
			t.Fatal(err)
		}
		total += pf.Amount
	}
	if math.Abs(total-res.Value) > 1e-6 {
		t.Fatalf("decomposition total %v != flow %v", total, res.Value)
	}
}

func TestDecomposeFlowRandomCoversValue(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 10; trial++ {
		g := New()
		const n = 10
		g.AddNodes(n)
		for i := 0; i < 35; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(1, 9)})
		}
		res, err := g.MaxFlow(0, NodeID(n-1), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		paths, err := g.DecomposeFlow(0, NodeID(n-1), res.EdgeFlow)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, pf := range paths {
			total += pf.Amount
		}
		if math.Abs(total-res.Value) > 1e-5 {
			t.Fatalf("trial %d: decomposed %v of %v", trial, total, res.Value)
		}
	}
}

func TestDecomposeFlowBadLength(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if _, err := g.DecomposeFlow(a, a, []float64{1, 2}); err == nil {
		t.Fatal("bad edgeFlow length accepted")
	}
}

func BenchmarkMaxFlowGrid(b *testing.B) {
	// 10x10 grid, unit-ish capacities.
	g := New()
	const side = 10
	g.AddNodes(side * side)
	id := func(r, c int) NodeID { return NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(Edge{From: id(r, c), To: id(r, c+1), Capacity: 3})
			}
			if r+1 < side {
				g.AddEdge(Edge{From: id(r, c), To: id(r+1, c), Capacity: 3})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MaxFlow(id(0, 0), id(side-1, side-1), math.Inf(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostMaxFlowGrid(b *testing.B) {
	g := New()
	const side = 8
	g.AddNodes(side * side)
	id := func(r, c int) NodeID { return NodeID(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(Edge{From: id(r, c), To: id(r, c+1), Capacity: 3, Cost: float64((r + c) % 4)})
			}
			if r+1 < side {
				g.AddEdge(Edge{From: id(r, c), To: id(r+1, c), Capacity: 3, Cost: float64((r * c) % 3)})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MinCostMaxFlow(id(0, 0), id(side-1, side-1)); err != nil {
			b.Fatal(err)
		}
	}
}
