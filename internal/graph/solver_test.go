package graph

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// TestSolverMatchesMinCostFlowRandom: a fresh MCFSolver.Solve with nil
// overrides is the same computation as Graph.MinCostFlow (which now
// delegates to it); both must match bit for bit across random graphs.
func TestSolverMatchesMinCostFlowRandom(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g := randomGraph(seed, 9, 30)
		want, wantErr := g.MinCostFlow(0, 8, math.Inf(1))
		got, gotErr := NewMCFSolver(g).Solve(0, 8, math.Inf(1), nil, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", seed, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		assertSameFlow(t, seed, got, want)
	}
}

// TestSolverWarmMatchesColdPerturbed is the warm-start determinism
// property: one solver reused across rounds of random capacity
// perturbations (via the fwdCap override) must produce bit-identical
// values, costs, and per-edge flows to a cold Graph.MinCostFlow over a
// graph carrying those capacities.
func TestSolverWarmMatchesColdPerturbed(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomGraph(seed^0x51ead, 10, 36)
		nE := g.NumEdges()
		solver := NewMCFSolver(g)
		caps := make([]float64, nE)
		flow := make([]float64, nE)
		r := rng.New(seed ^ 0xfeed)
		for round := 0; round < 12; round++ {
			for i := range caps {
				caps[i] = r.Uniform(0, 15)
			}
			limit := r.Uniform(1, 40)

			warm, warmErr := solver.Solve(0, 9, limit, caps, flow)

			cold := g.Clone()
			for i := range caps {
				cold.SetCapacity(EdgeID(i), caps[i])
			}
			want, wantErr := cold.MinCostFlow(0, 9, limit)

			if (warmErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d round %d: error mismatch: warm %v cold %v", seed, round, warmErr, wantErr)
			}
			if warmErr != nil {
				continue
			}
			assertSameFlow(t, seed, warm, want)
		}
	}
}

// assertSameFlow compares two flow results bit for bit.
func assertSameFlow(t *testing.T, seed uint64, got, want FlowResult) {
	t.Helper()
	if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
		t.Fatalf("seed %d: value %v != %v", seed, got.Value, want.Value)
	}
	if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) {
		t.Fatalf("seed %d: cost %v != %v", seed, got.Cost, want.Cost)
	}
	if len(got.EdgeFlow) != len(want.EdgeFlow) {
		t.Fatalf("seed %d: edge flow lengths %d != %d", seed, len(got.EdgeFlow), len(want.EdgeFlow))
	}
	for i := range got.EdgeFlow {
		if math.Float64bits(got.EdgeFlow[i]) != math.Float64bits(want.EdgeFlow[i]) {
			t.Fatalf("seed %d: edge %d flow %v != %v", seed, i, got.EdgeFlow[i], want.EdgeFlow[i])
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("seed %d: stats %+v != %+v", seed, got.Stats, want.Stats)
	}
}

// TestSolverSteadyStateZeroAlloc: once the solver's buffers have grown,
// repeated Solve calls with caller-provided fwdCap/flowOut must not
// allocate — the property the TE round hot path is built on.
func TestSolverSteadyStateZeroAlloc(t *testing.T) {
	g := randomGraph(7, 12, 48)
	solver := NewMCFSolver(g)
	nE := g.NumEdges()
	caps := make([]float64, nE)
	flow := make([]float64, nE)
	r := rng.New(99)
	round := func() {
		for i := range caps {
			caps[i] = r.Uniform(0, 12)
		}
		if _, err := solver.Solve(0, 11, math.Inf(1), caps, flow); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(20, round); avg != 0 {
		t.Fatalf("steady-state Solve allocates %v times per run, want 0", avg)
	}
}

// highCostLayeredGraph builds the ISSUE 8 audit scenario: a large
// sparse layered graph (>= 10k edges) where every cheap real edge has
// an expensive parallel "fake" edge (cost ~1e9, the augmentation's
// high-penalty shape). Min-cost max-flow must route through many fake
// edges, accumulating Johnson potentials of ~layers × 1e9.
func highCostLayeredGraph(seed uint64, layers, width int) (*Graph, NodeID, NodeID) {
	r := rng.New(seed)
	g := New()
	src := g.AddNode("src")
	nodes := make([][]NodeID, layers)
	for l := range nodes {
		nodes[l] = make([]NodeID, width)
		for k := range nodes[l] {
			nodes[l][k] = g.AddNode("")
		}
	}
	dst := g.AddNode("dst")
	for _, v := range nodes[0] {
		g.AddEdge(Edge{From: src, To: v, Capacity: 1e6})
	}
	for l := 0; l+1 < layers; l++ {
		for _, u := range nodes[l] {
			for _, v := range nodes[l+1] {
				// Cheap real edge with thin capacity…
				g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(0.1, 1), Cost: r.Uniform(0, 5)})
				// …and an expensive fake sibling with the headroom.
				g.AddEdge(Edge{From: u, To: v, Capacity: r.Uniform(5, 20), Cost: r.Uniform(0.9e9, 1.1e9)})
			}
		}
	}
	for _, u := range nodes[layers-1] {
		g.AddEdge(Edge{From: u, To: dst, Capacity: 1e6})
	}
	return g, src, dst
}

// TestMinCostFlowHighCostLargeSparse is the ISSUE 8 satellite-1
// regression: on >= 10k-edge graphs whose high-cost fake edges drive
// potentials to ~1e10, the reduced-cost check must tolerate the
// proportional float64 rounding instead of aborting with a spurious
// "negative reduced cost" error (the old fixed -1e-6 threshold sits
// below the ~2e-6 rounding floor of 1e10-magnitude sums), and the
// potential-bound invariant must hold throughout. The solve must also
// remain a feasible flow.
func TestMinCostFlowHighCostLargeSparse(t *testing.T) {
	g, src, dst := highCostLayeredGraph(0x10a, 51, 10)
	if n := g.NumEdges(); n < 10000 {
		t.Fatalf("scenario too small: %d edges", n)
	}
	res, err := g.MinCostMaxFlow(src, dst)
	if err != nil {
		if strings.Contains(err.Error(), "negative reduced cost") ||
			strings.Contains(err.Error(), "out of bounds") {
			t.Fatalf("potential invariant misfired on a well-posed instance: %v", err)
		}
		t.Fatalf("MinCostMaxFlow: %v", err)
	}
	if res.Value <= 0 {
		t.Fatalf("no flow shipped on a connected layered graph")
	}
	// Feasibility: every edge within capacity, conservation at interior
	// nodes (net flow zero).
	net := make([]float64, g.NumNodes())
	for i, f := range res.EdgeFlow {
		e := g.Edge(EdgeID(i))
		if f < -1e-6 || f > e.Capacity+1e-6 {
			t.Fatalf("edge %d flow %v outside [0, %v]", i, f, e.Capacity)
		}
		net[e.From] += f
		net[e.To] -= f
	}
	for n := range net {
		if NodeID(n) == src || NodeID(n) == dst {
			continue
		}
		if net[n] > 1e-3 || net[n] < -1e-3 {
			t.Fatalf("conservation violated at node %d: %v", n, net[n])
		}
	}
	if math.Abs(net[src]-res.Value) > 1e-3 {
		t.Fatalf("source imbalance %v != value %v", net[src], res.Value)
	}
}

// TestNegRCTolScalesWithMagnitude pins the tolerance shape: strictly
// more permissive than the old fixed 1e-6 floor (so no previously-
// passing instance can newly error), and proportional to the operand
// magnitudes so 1e10-scale potential sums get headroom above their
// ~2e-6 float64 rounding floor.
func TestNegRCTolScalesWithMagnitude(t *testing.T) {
	if tol := negRCTol(0, 0, 0); tol < 1e-6 {
		t.Fatalf("tolerance %v below the old absolute floor", tol)
	}
	tol := negRCTol(1e9, 1e10, -1e10)
	if rounding := 2.1e10 * (1.0 / (1 << 52)); tol < rounding {
		t.Fatalf("tolerance %v below the rounding floor %v of its operands", tol, rounding)
	}
	if tol > 1 {
		t.Fatalf("tolerance %v large enough to mask real negative costs", tol)
	}
}
