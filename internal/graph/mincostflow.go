package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// MinCostFlow computes a minimum-cost flow of up to limit units from
// src to dst using successive shortest augmenting paths with Johnson
// potentials. With limit = +Inf it returns the min-cost *maximum* flow —
// the computation Theorem 1 maps the augmented topology onto.
//
// Negative edge costs are allowed as long as the graph has no
// negative-cost cycle of positive capacity (an error is returned if one
// is reachable from src).
func (g *Graph) MinCostFlow(src, dst NodeID, limit float64) (FlowResult, error) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return FlowResult{}, fmt.Errorf("graph: MinCostFlow endpoints invalid: %d -> %d", int(src), int(dst))
	}
	if src == dst {
		return FlowResult{EdgeFlow: make([]float64, g.NumEdges())}, nil
	}
	if limit < 0 || math.IsNaN(limit) {
		return FlowResult{}, fmt.Errorf("graph: MinCostFlow limit %v invalid", limit)
	}

	r := newResidual(g)
	n := r.n

	// Initial potentials via Bellman-Ford to accommodate negative costs.
	pot := make([]float64, n)
	{
		dist, neg := g.BellmanFord(src)
		if neg {
			return FlowResult{}, fmt.Errorf("graph: negative-cost cycle reachable from source")
		}
		for i, d := range dist {
			if math.IsInf(d, 1) {
				pot[i] = 0 // unreachable; potential unused
			} else {
				pot[i] = d
			}
		}
	}

	dist := make([]float64, n)
	prevArc := make([]int, n)
	var total, totalCost float64
	var stats SolveStats

	for total+Eps < limit {
		// Dijkstra on reduced costs.
		stats.Phases++
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[src] = 0
		pq := &dijkstraPQ{{node: src, dist: 0}}
		done := make([]bool, n)
		for pq.Len() > 0 {
			it := heap.Pop(pq).(dijkstraItem)
			u := it.node
			if done[u] {
				continue
			}
			done[u] = true
			for _, a := range r.adj[u] {
				if r.cap[a] <= Eps {
					continue
				}
				v := r.head[a]
				rc := r.cost[a] + pot[u] - pot[v]
				if rc < 0 {
					// Numerical slack: clamp tiny negatives.
					if rc < -1e-6 {
						return FlowResult{}, fmt.Errorf("graph: negative reduced cost %v (potential invariant broken)", rc)
					}
					rc = 0
				}
				if nd := dist[u] + rc; nd+Eps < dist[v] {
					dist[v] = nd
					prevArc[v] = a
					heap.Push(pq, dijkstraItem{node: v, dist: nd})
				}
			}
		}
		if math.IsInf(dist[dst], 1) {
			break // no augmenting path left
		}
		updatePotentials(pot, dist, dist[dst])
		// Find bottleneck along the path.
		push := limit - total
		for v := dst; v != src; {
			a := prevArc[v]
			if r.cap[a] < push {
				push = r.cap[a]
			}
			v = r.from(a)
		}
		if push <= Eps {
			break
		}
		// Apply.
		for v := dst; v != src; {
			a := prevArc[v]
			r.cap[a] -= push
			r.cap[a^1] += push
			totalCost += push * r.cost[a]
			v = r.from(a)
		}
		total += push
		stats.Augmentations++
	}

	return FlowResult{Value: total, EdgeFlow: r.flows(g), Cost: totalCost, Stats: stats}, nil
}

// updatePotentials folds one Dijkstra phase's distances into the
// Johnson potentials: pot[i] += min(dist[i], dstDist).
//
// The cap at dstDist (the phase's distance to the sink) is the
// standard successive-shortest-path rule. Leaving a phase-unreachable
// node's potential untouched while its neighbours advance breaks the
// reduced-cost invariant the Dijkstra scan checks: if a later residual
// arc makes the node reachable again, the first arc scanned out of it
// sees rc = cost + pot[stale] - pot[advanced] < 0 and MinCostFlow
// reports a spurious "negative reduced cost" error. Capping at dstDist
// keeps every arc between ever-reachable nodes at rc >= 0 regardless
// of which nodes a given phase visits (arcs whose reduced cost the
// next phase consults all lie at distance <= dstDist, so the cap never
// under-advances a node that matters).
func updatePotentials(pot, dist []float64, dstDist float64) {
	for i := range pot {
		if d := dist[i]; d < dstDist { // Inf compares false
			pot[i] += d
		} else {
			pot[i] += dstDist
		}
	}
}

// MinCostMaxFlow returns the minimum-cost maximum flow from src to dst.
func (g *Graph) MinCostMaxFlow(src, dst NodeID) (FlowResult, error) {
	return g.MinCostFlow(src, dst, math.Inf(1))
}

// DecomposeFlow decomposes an edge-flow assignment into a set of
// src→dst paths with per-path amounts (plus any cycles, which are
// dropped). TE controllers need path-level output to program tunnels;
// the core package's translation step (§4.1 step 3b) uses this.
type PathFlow struct {
	Path   Path
	Amount float64
}

// DecomposeFlow performs a standard flow decomposition of edgeFlow on g
// from src to dst. The input slice is not modified.
func (g *Graph) DecomposeFlow(src, dst NodeID, edgeFlow []float64) ([]PathFlow, error) {
	if len(edgeFlow) != g.NumEdges() {
		return nil, fmt.Errorf("graph: edgeFlow has %d entries for %d edges", len(edgeFlow), g.NumEdges())
	}
	rem := append([]float64(nil), edgeFlow...)
	var out []PathFlow
	for {
		// Walk greedily from src along positive-flow edges.
		prevEdge := make([]EdgeID, g.NumNodes())
		for i := range prevEdge {
			prevEdge[i] = NoEdge
		}
		visited := make([]bool, g.NumNodes())
		visited[src] = true
		queue := []NodeID{src}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.Out(u) {
				if rem[id] <= Eps {
					continue
				}
				v := g.edges[id].To
				if visited[v] {
					continue
				}
				visited[v] = true
				prevEdge[v] = id
				if v == dst {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			break
		}
		p := g.reconstruct(src, dst, prevEdge)
		amount := math.Inf(1)
		for _, id := range p.Edges {
			if rem[id] < amount {
				amount = rem[id]
			}
		}
		if amount <= Eps {
			break
		}
		for _, id := range p.Edges {
			rem[id] -= amount
		}
		out = append(out, PathFlow{Path: p, Amount: amount})
	}
	return out, nil
}
