package graph

import (
	"fmt"
	"math"
)

// MinCostFlow computes a minimum-cost flow of up to limit units from
// src to dst using successive shortest augmenting paths with Johnson
// potentials. With limit = +Inf it returns the min-cost *maximum* flow —
// the computation Theorem 1 maps the augmented topology onto.
//
// Negative edge costs are allowed as long as the graph has no
// negative-cost cycle of positive capacity (an error is returned if one
// is reachable from src).
//
// This is the cold entry point: it builds a fresh MCFSolver per call.
// Callers that solve repeatedly over one graph (the TE round hot path)
// should hold an MCFSolver and call Solve, which reuses the residual
// layout and scratch buffers and produces bit-identical results.
func (g *Graph) MinCostFlow(src, dst NodeID, limit float64) (FlowResult, error) {
	return NewMCFSolver(g).Solve(src, dst, limit, nil, nil)
}

// updatePotentials folds one Dijkstra phase's distances into the
// Johnson potentials: pot[i] += min(dist[i], dstDist).
//
// The cap at dstDist (the phase's distance to the sink) is the
// standard successive-shortest-path rule. Leaving a phase-unreachable
// node's potential untouched while its neighbours advance breaks the
// reduced-cost invariant the Dijkstra scan checks: if a later residual
// arc makes the node reachable again, the first arc scanned out of it
// sees rc = cost + pot[stale] - pot[advanced] < 0 and MinCostFlow
// reports a spurious "negative reduced cost" error. Capping at dstDist
// keeps every arc between ever-reachable nodes at rc >= 0 regardless
// of which nodes a given phase visits (arcs whose reduced cost the
// next phase consults all lie at distance <= dstDist, so the cap never
// under-advances a node that matters).
func updatePotentials(pot, dist []float64, dstDist float64) {
	for i := range pot {
		if d := dist[i]; d < dstDist { // Inf compares false
			pot[i] += d
		} else {
			pot[i] += dstDist
		}
	}
}

// MinCostMaxFlow returns the minimum-cost maximum flow from src to dst.
func (g *Graph) MinCostMaxFlow(src, dst NodeID) (FlowResult, error) {
	return g.MinCostFlow(src, dst, math.Inf(1))
}

// DecomposeFlow decomposes an edge-flow assignment into a set of
// src→dst paths with per-path amounts (plus any cycles, which are
// dropped). TE controllers need path-level output to program tunnels;
// the core package's translation step (§4.1 step 3b) uses this.
type PathFlow struct {
	Path   Path
	Amount float64
}

// DecomposeFlow performs a standard flow decomposition of edgeFlow on g
// from src to dst. The input slice is not modified.
func (g *Graph) DecomposeFlow(src, dst NodeID, edgeFlow []float64) ([]PathFlow, error) {
	if len(edgeFlow) != g.NumEdges() {
		return nil, fmt.Errorf("graph: edgeFlow has %d entries for %d edges", len(edgeFlow), g.NumEdges())
	}
	rem := append([]float64(nil), edgeFlow...)
	var out []PathFlow
	for {
		// Walk greedily from src along positive-flow edges.
		prevEdge := make([]EdgeID, g.NumNodes())
		for i := range prevEdge {
			prevEdge[i] = NoEdge
		}
		visited := make([]bool, g.NumNodes())
		visited[src] = true
		queue := []NodeID{src}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.Out(u) {
				if rem[id] <= Eps {
					continue
				}
				v := g.edges[id].To
				if visited[v] {
					continue
				}
				visited[v] = true
				prevEdge[v] = id
				if v == dst {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			break
		}
		p := g.reconstruct(src, dst, prevEdge)
		amount := math.Inf(1)
		for _, id := range p.Edges {
			if rem[id] < amount {
				amount = rem[id]
			}
		}
		if amount <= Eps {
			break
		}
		for _, id := range p.Edges {
			rem[id] -= amount
		}
		out = append(out, PathFlow{Path: p, Amount: amount})
	}
	return out, nil
}
