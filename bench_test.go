package repro

// bench_test.go regenerates every table and figure of the paper as a
// benchmark target, per DESIGN.md's experiment index. Each benchmark
// runs the corresponding experiment at the Quick scale (the paper-scale
// run is cmd/rwc-experiments without -quick) and reports the headline
// metric through b.ReportMetric so `go test -bench=.` doubles as a
// results table.
//
// Ablation benches at the bottom quantify the design choices DESIGN.md
// calls out: penalty functions, TE algorithm on the same augmented
// graph, augmentation granularity, and the two flow solvers.

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/serve"
	"repro/internal/rng"
	"repro/internal/te"
	"repro/internal/wan"
)

func opts() experiments.Options { return experiments.QuickOptions() }

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(len(res.PerWavelength)), "wavelengths")
		}
	}
}

func BenchmarkFigure2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2a(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FracHDRUnder2*100, "%HDR<2dB")
			b.ReportMetric(res.MeanRange, "mean-range-dB")
		}
	}
}

func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2b(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FracAtLeast175*100, "%feasible>=175G")
			b.ReportMetric(res.GainTbpsAt2000Links, "gain-Tbps@2000links")
		}
	}
}

func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3a(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Median[175]), "median-failures@175G")
			b.ReportMetric(float64(res.Median[200]), "median-failures@200G")
		}
	}
}

func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3b(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.MeanHours[100], "mean-failure-hours@100G")
		}
	}
}

func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Shares.DurationShare[0]*100, "%duration-maintenance")
		}
	}
}

func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Shares.OpportunityEventShare()*100, "%opportunity-events")
		}
	}
}

func BenchmarkFigure4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4c(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FracAbove3*100, "%failures-SNR>=3dB")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Panels[2].EVM, "16QAM-EVM")
		}
	}
}

func BenchmarkFigure6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6b(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.PowerCycleMean, "powercycle-mean-s")
			b.ReportMetric(res.HotMean*1000, "hot-mean-ms")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Modes[0].Upgrades), "upgrades-few-increases")
			b.ReportMetric(float64(res.Modes[1].Upgrades), "upgrades-short-paths")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.WidestAfter, "widest-single-path-Gbps")
		}
	}
}

func BenchmarkTheorem1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Theorem1(opts())
		if err != nil {
			b.Fatal(err)
		}
		if res.Holds != res.Trials {
			b.Fatalf("theorem failed: %d/%d", res.Holds, res.Trials)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Trials), "instances")
		}
	}
}

func BenchmarkThroughputGains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ThroughputGains(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.GainOverStatic, "dynamic/static")
		}
	}
}

func BenchmarkAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AvailabilityGains(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AvoidableFrac*100, "%failures-avoidable")
		}
	}
}

func BenchmarkThresholdSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ThresholdSensitivity(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Points[0].GainTbpsAt2000-res.Points[len(res.Points)-1].GainTbpsAt2000, "gain-span-Tbps")
		}
	}
}

func BenchmarkControllerSafeguards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ControllerAblation(opts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Variants[0].Changes), "changes-plain")
			b.ReportMetric(float64(res.Variants[1].Changes), "changes-damped")
		}
	}
}

// --- Fan-out ---

// BenchmarkFigure2aWorkers measures the deterministic fan-out on the
// fleet generation + analysis path behind Figure 2a/2b. Output is
// byte-identical for every worker count (see internal/par and the CI
// byte-identity smoke); only wall time may differ, and only when
// GOMAXPROCS grants real parallelism — on a single-core runner the
// two entries should be within noise of each other.
func BenchmarkFigure2aWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := opts()
			o.Workers = w
			for i := 0; i < b.N; i++ {
				res, err := experiments.Figure2a(o)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.MeanRange, "mean-range-dB")
				}
			}
		})
	}
}

// BenchmarkScrapeUnderLoad measures a /metrics scrape of the live
// operations plane while writer goroutines hammer the registry — the
// cost a running simulation pays per Prometheus scrape. The handler is
// driven directly (no network) so the number isolates snapshot +
// rendering, which is the part internal/obs/serve owns.
func BenchmarkScrapeUnderLoad(b *testing.B) {
	o := obs.New("bench")
	// A registry population comparable to a real wansim run: a few
	// hundred labelled series plus a histogram.
	for i := 0; i < 200; i++ {
		o.Counter(fmt.Sprintf("bench_series_%03d_total", i), "scrape-load fixture series",
			obs.Label{Key: "policy", Value: "dynamic"}).Inc()
	}
	hist := o.Histogram("bench_work", "scrape-load fixture histogram",
		[]float64{16, 64, 256, 1024, 4096, 16384, 65536})
	srv := serve.New(serve.Options{Obs: o, Tool: "bench"})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := o.Counter(fmt.Sprintf("bench_writer_%d_total", w), "scrape-load writer series")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					hist.Observe(float64(i % 70000))
				}
			}
		}(w)
	}

	b.ResetTimer()
	var scrapeBytes int
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			b.Fatalf("scrape failed: %d", rec.Code)
		}
		scrapeBytes = rec.Body.Len()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(scrapeBytes), "scrape-bytes")
}

// --- Ablations ---

// ablationTopology builds a mid-size random WAN with upgrades for the
// penalty/TE ablations.
func ablationTopology(seed uint64) (*core.Topology, []te.Demand) {
	r := rng.New(seed)
	g := graph.New()
	const n = 20
	g.AddNodes(n)
	top := core.NewTopology(g)
	for i := 0; i < n*4; i++ {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: r.Uniform(1, 5)})
		if r.Bernoulli(0.7) {
			_ = top.SetUpgrade(id, 100, r.Uniform(10, 100))
		}
		_ = top.SetTraffic(id, r.Uniform(0, 80))
	}
	var demands []te.Demand
	for len(demands) < 15 {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		demands = append(demands, te.Demand{Src: u, Dst: v, Volume: r.Uniform(40, 160)})
	}
	return top, demands
}

// benchPenalty measures throughput and upgrade count for one penalty
// function on the shared ablation topology.
func benchPenalty(b *testing.B, p core.PenaltyFunc) {
	top, demands := ablationTopology(1)
	b.ResetTimer()
	var upgrades, shipped float64
	for i := 0; i < b.N; i++ {
		aug, err := core.Augment(top, p)
		if err != nil {
			b.Fatal(err)
		}
		alloc, err := te.Greedy{}.Allocate(aug.Graph, demands)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := aug.Translate(graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
		if err != nil {
			b.Fatal(err)
		}
		upgrades = float64(len(dec.Changes))
		shipped = dec.Value
	}
	b.ReportMetric(upgrades, "upgrades")
	b.ReportMetric(shipped, "shipped-Gbps")
}

func BenchmarkAblationPenaltyMatrix(b *testing.B)  { benchPenalty(b, core.PenaltyFromMatrix) }
func BenchmarkAblationPenaltyTraffic(b *testing.B) { benchPenalty(b, core.PenaltyTrafficProportional) }
func BenchmarkAblationPenaltyUnit(b *testing.B)    { benchPenalty(b, core.PenaltyUnitWeights) }

// benchTE measures one TE algorithm on the same augmented topology.
func benchTE(b *testing.B, alg te.Algorithm) {
	top, demands := ablationTopology(2)
	aug, err := core.Augment(top, core.PenaltyFromMatrix)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var shipped float64
	for i := 0; i < b.N; i++ {
		alloc, err := alg.Allocate(aug.Graph, demands)
		if err != nil {
			b.Fatal(err)
		}
		shipped = alloc.Throughput
	}
	b.ReportMetric(shipped, "shipped-Gbps")
}

func BenchmarkAblationTEShortestPath(b *testing.B)  { benchTE(b, te.ShortestPath{}) }
func BenchmarkAblationTEGreedy(b *testing.B)        { benchTE(b, te.Greedy{}) }
func BenchmarkAblationTEKPath(b *testing.B)         { benchTE(b, te.KPath{K: 4}) }
func BenchmarkAblationTEMaxConcurrent(b *testing.B) { benchTE(b, te.MaxConcurrent{Epsilon: 0.2}) }

// BenchmarkAblationLadder compares one fake edge to max capacity (the
// default) against one fake edge per ladder rung.
func BenchmarkAblationLadder(b *testing.B) {
	for _, granular := range []bool{false, true} {
		name := "single-step"
		if granular {
			name = "per-rung"
		}
		b.Run(name, func(b *testing.B) {
			r := rng.New(3)
			g := graph.New()
			const n = 15
			g.AddNodes(n)
			top := core.NewTopology(g)
			ladder := modulation.Default()
			for i := 0; i < n*3; i++ {
				u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
				if u == v {
					continue
				}
				id := g.AddEdge(graph.Edge{From: u, To: v, Capacity: 100, Weight: 1})
				if !r.Bernoulli(0.7) {
					continue
				}
				if granular {
					// One fake edge per rung above 100: approximated
					// here by several parallel upgrade annotations on
					// extra parallel physical edges of rung-step size.
					prev := modulation.Gbps(100)
					for _, m := range ladder.Modes() {
						if m.Capacity <= 100 {
							continue
						}
						step := g.AddEdge(graph.Edge{From: u, To: v, Capacity: 0, Weight: 1})
						_ = top.SetUpgrade(step, float64(m.Capacity-prev), 50)
						prev = m.Capacity
					}
				} else {
					_ = top.SetUpgrade(id, 100, 50)
				}
			}
			src, dst := graph.NodeID(0), graph.NodeID(n-1)
			b.ResetTimer()
			var v float64
			for i := 0; i < b.N; i++ {
				aug, err := core.Augment(top, core.PenaltyFromMatrix)
				if err != nil {
					b.Fatal(err)
				}
				res, err := aug.Graph.MinCostMaxFlow(src, dst)
				if err != nil {
					b.Fatal(err)
				}
				v = res.Value
			}
			b.ReportMetric(v, "maxflow-Gbps")
		})
	}
}

// BenchmarkFlowSolvers compares Dinic and successive-shortest-path on a
// backbone-scale graph.
func BenchmarkFlowSolvers(b *testing.B) {
	build := func() *graph.Graph {
		r := rng.New(5)
		g := graph.New()
		const n = 60
		g.AddNodes(n)
		for i := 0; i < n*5; i++ {
			u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
			if u == v {
				continue
			}
			g.AddEdge(graph.Edge{From: u, To: v, Capacity: r.Uniform(10, 200), Cost: r.Uniform(0, 5)})
		}
		return g
	}
	g := build()
	b.Run("dinic-maxflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.MaxFlow(0, 59, math.Inf(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ssp-mincostmaxflow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.MinCostMaxFlow(0, 59); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Flight recorder ---

// BenchmarkWANFlight measures flight-recording overhead on the
// dynamic-policy WAN simulation: "off" is the plain run, "on" records
// one frame per round and serializes the full log (frames + trailer)
// at the end, reporting the frame count and encoded log size. The two
// variants run the same seed, so the gap between them is the price of
// the per-link decision audit.
func BenchmarkWANFlight(b *testing.B) {
	base := func() wan.SimConfig {
		return wan.SimConfig{
			Net:            wan.Abilene(2),
			Rounds:         16,
			Seed:           2017,
			DemandFraction: 1.2,
			DemandSigma:    0.1,
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := wan.NewSimulation(base())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(wan.PolicyDynamic); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base()
			cfg.Flight = flight.New(flight.Options{})
			sim, err := wan.NewSimulation(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(wan.PolicyDynamic); err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := cfg.Flight.WriteLog(&buf, flight.Meta{Tool: "bench", Seed: 2017}, nil); err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(len(cfg.Flight.Frames())), "frames")
				b.ReportMetric(float64(buf.Len()), "log-bytes")
			}
		}
	})
}

// --- Warm-start hot path ---

// BenchmarkSteadyStateRound measures one dynamic TE round on the
// warm-start pipeline — Augmenter.Refresh + warm Greedy allocation +
// TranslateInto over a persistent topology, the exact loop
// internal/wan runs per round. After warm-up the round is
// allocation-free: every buffer (augmented graph, solver scratch,
// decision, attribution) is reused across rounds.
func BenchmarkSteadyStateRound(b *testing.B) {
	top, demands := ablationTopology(4)
	aug, err := core.NewAugmenter(top, core.PenaltyFromMatrix)
	if err != nil {
		b.Fatal(err)
	}
	alg := te.NewWarm(te.Greedy{})
	var dec core.Decision
	r := rng.New(17)
	edges := top.G.Edges()
	round := func() {
		// Perturb headroom the way SNR churn does, then solve.
		for _, e := range edges {
			if _, ok := top.Upgrades[e.ID]; ok {
				_ = top.SetUpgrade(e.ID, r.Uniform(20, 120), r.Uniform(10, 100))
			}
		}
		if err := aug.Refresh(); err != nil {
			b.Fatal(err)
		}
		alloc, err := alg.Allocate(aug.G, demands)
		if err != nil {
			b.Fatal(err)
		}
		if err := aug.TranslateInto(&dec, graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		round()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.ReportMetric(dec.Value, "shipped-Gbps")
}

// BenchmarkContinentalRound runs the paper-scale throughput simulation
// on a 200-node continental backbone (≈2400 fiber×wavelength links at 8
// wavelengths) — the scale §1 of the paper argues for, far beyond the
// Abilene default.
func BenchmarkContinentalRound(b *testing.B) {
	o := opts()
	o.SimTopology = "continental:200"
	o.SimWavelengths = 8
	o.SimMaxDemands = 800
	o.SimRounds = 4
	for i := 0; i < b.N; i++ {
		res, err := experiments.ThroughputGains(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.GainOverStatic, "dynamic/static")
		}
	}
}
