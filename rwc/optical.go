package rwc

import (
	"repro/internal/graph"
	"repro/internal/qot"
	"repro/internal/spectrum"
)

// Optical layer: lightpath provisioning (the process that creates the
// paper's wavelength = IP-link mapping) and the quality-of-transmission
// budget that links fiber length to SNR.

type (
	// OpticalNetwork provisions lightpaths over a fiber plant with
	// first-fit wavelength assignment and QoT admission.
	OpticalNetwork = spectrum.Network
	// OpticalConfig tunes channels, candidate routes, and the default
	// deployment capacity.
	OpticalConfig = spectrum.Config
	// Lightpath is one provisioned wavelength service.
	Lightpath = spectrum.Lightpath
	// LightpathID identifies a lightpath.
	LightpathID = spectrum.LightpathID
	// QoTParams is the optical line-system budget (spans, amplifier
	// noise, launch power, nonlinear penalty).
	QoTParams = qot.Params
)

// NewOpticalNetwork wraps a fiber graph (edge Weight = length in km).
func NewOpticalNetwork(fibers *Graph, cfg OpticalConfig) (*OpticalNetwork, error) {
	return spectrum.NewNetwork(fibers, cfg)
}

// DefaultQoT returns 2017-era long-haul line-system parameters.
func DefaultQoT() QoTParams { return qot.Default() }

// LightpathMapping translates IP edges back to lightpaths after
// spectrum.Network.ToTopology.
type LightpathMapping = map[graph.EdgeID]spectrum.LightpathID
