package rwc_test

import (
	"math"
	"testing"

	"repro/rwc"
)

// TestQuickstartFlow exercises the doc-comment example end to end: the
// public API must support build → upgrade → augment → TE → translate.
func TestQuickstartFlow(t *testing.T) {
	g := rwc.NewGraph()
	a, b := g.AddNode("A"), g.AddNode("B")
	link := g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 100, Weight: 1})

	top := rwc.NewTopology(g)
	if err := top.SetUpgrade(link, 100, 50); err != nil {
		t.Fatal(err)
	}

	aug, err := rwc.Augment(top, rwc.PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := rwc.Greedy{}.Allocate(aug.Graph, []rwc.Demand{{Src: a, Dst: b, Volume: 150}})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := aug.Translate(rwc.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Value-150) > 1e-9 {
		t.Fatalf("shipped %v, want 150", dec.Value)
	}
	if len(dec.Changes) != 1 || dec.Changes[0].NewCapacity != 200 {
		t.Fatalf("changes: %+v", dec.Changes)
	}
}

func TestTheorem1ThroughPublicAPI(t *testing.T) {
	g := rwc.NewGraph()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	e1 := g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 100})
	e2 := g.AddEdge(rwc.Edge{From: b, To: c, Capacity: 100})
	top := rwc.NewTopology(g)
	if err := top.SetUpgrade(e1, 50, 10); err != nil {
		t.Fatal(err)
	}
	if err := top.SetUpgrade(e2, 50, 10); err != nil {
		t.Fatal(err)
	}
	rep, err := rwc.CheckTheorem1(top, a, c, rwc.PenaltyTrafficProportional)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds || rep.FullValue != 150 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestLadderThroughPublicAPI(t *testing.T) {
	l := rwc.DefaultLadder()
	m, ok := l.FeasibleCapacity(14.2)
	if !ok || m.Capacity != rwc.Gbps(175) {
		t.Fatalf("feasible at 14.2 dB = %v, %v", m.Capacity, ok)
	}
}

func TestTransceiverThroughPublicAPI(t *testing.T) {
	tr, err := rwc.NewTransceiver(rwc.TransceiverConfig{
		InitialMode: 100, ChannelSNRdB: 20, HotCapable: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := rwc.NewDriver(tr, nil)
	rep, err := drv.ChangeModulation(150, rwc.MethodHot)
	if err != nil {
		t.Fatal(err)
	}
	if rep.To.Capacity != 150 {
		t.Fatalf("change report: %+v", rep)
	}
}

func TestTEAlgorithmsThroughPublicAPI(t *testing.T) {
	g := rwc.NewGraph()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 10, Weight: 1})
	demands := []rwc.Demand{{Src: a, Dst: b, Volume: 5}}
	for _, alg := range []rwc.Algorithm{
		rwc.ShortestPath{}, rwc.Greedy{}, rwc.KPath{}, rwc.MaxConcurrent{},
	} {
		alloc, err := alg.Allocate(g, demands)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := rwc.CheckFeasible(g, alloc); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if alloc.Throughput < 4.5 {
			t.Fatalf("%s shipped %v", alg.Name(), alloc.Throughput)
		}
	}
}
