// Package rwc is the public API of the Run-Walk-Crawl reproduction: a
// library for operating wide-area networks with dynamic (SNR-adaptive)
// link capacities, after Singh et al., "Run, Walk, Crawl: Towards
// Dynamic Link Capacities", HotNets 2017.
//
// The core idea: a physical link's SNR usually supports far more than
// its statically configured capacity. Rather than teaching every
// traffic-engineering (TE) controller about the optical layer, the
// library augments the IP topology with one *fake link* per upgradable
// physical link, annotated ⟨extra capacity, penalty⟩. Any TE algorithm
// run unmodified on the augmented graph produces a flow whose fake-link
// usage *is* the set of modulation upgrades to perform (Theorem 1).
//
// Typical use:
//
//	g := rwc.NewGraph()
//	a, b := g.AddNode("A"), g.AddNode("B")
//	link := g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 100, Weight: 1})
//
//	top := rwc.NewTopology(g)
//	top.SetUpgrade(link, 100, 50) // +100 Gbps available at penalty 50
//
//	aug, _ := rwc.Augment(top, rwc.PenaltyFromMatrix)
//	alloc, _ := rwc.Greedy{}.Allocate(aug.Graph, []rwc.Demand{{Src: a, Dst: b, Volume: 150}})
//	dec, _ := aug.Translate(rwc.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
//	for _, ch := range dec.Changes {
//	    fmt.Printf("raise link %d: %v -> %v Gbps\n", ch.Edge, ch.OldCapacity, ch.NewCapacity)
//	}
//
// Sub-surfaces re-exported here:
//
//   - graph construction and flow algorithms (max-flow, min-cost
//     max-flow, k-shortest paths);
//   - the augmentation (Augment, Translate, UnsplittableGadget,
//     RemoveInfeasible) and penalty functions;
//   - TE algorithms (ShortestPath, Greedy, KPath, MaxConcurrent);
//   - the modulation ladder and SNR feasibility logic;
//   - the BVT reconfiguration model (power-cycle vs hitless changes).
//
// The measurement-study substrate (synthetic SNR fleet, failure
// tickets) and the experiment harness live in internal packages and are
// reachable through the cmd/ tools.
package rwc

import (
	"repro/internal/bvt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/te"
)

// Graph construction and flow machinery.
type (
	// Graph is a directed multigraph with per-edge capacity, cost and
	// routing weight.
	Graph = graph.Graph
	// NodeID identifies a vertex.
	NodeID = graph.NodeID
	// EdgeID identifies a directed edge.
	EdgeID = graph.EdgeID
	// Edge is one directed edge.
	Edge = graph.Edge
	// Path is a walk through the graph.
	Path = graph.Path
	// PathFlow is a path with an amount of flow on it.
	PathFlow = graph.PathFlow
	// FlowResult is the outcome of a flow computation.
	FlowResult = graph.FlowResult
	// DisjointPair is a working/protection pair of edge-disjoint paths
	// (Suurballe), used for protection routing.
	DisjointPair = graph.DisjointPair
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// Sentinel IDs.
const (
	NoNode = graph.NoNode
	NoEdge = graph.NoEdge
)

// The abstraction (the paper's contribution).
type (
	// Topology is the TE input G⟨V,E,U,P⟩: graph plus upgrade matrices.
	Topology = core.Topology
	// Upgrade is one link's dynamic-capacity headroom and penalty.
	Upgrade = core.Upgrade
	// Augmentation is Algorithm 1's output with translation state.
	Augmentation = core.Augmentation
	// Decision is the translated TE output: capacity changes + flows.
	Decision = core.Decision
	// CapacityChange is one instructed modulation upgrade.
	CapacityChange = core.CapacityChange
	// PenaltyFunc maps link state to augmentation edge costs.
	PenaltyFunc = core.PenaltyFunc
	// Theorem1Report is the evidence of the equivalence theorem.
	Theorem1Report = core.Theorem1Report
)

// NewTopology wraps a graph with empty upgrade annotations.
func NewTopology(g *Graph) *Topology { return core.NewTopology(g) }

// Augment implements Algorithm 1: one fake link per upgradable edge.
func Augment(t *Topology, p PenaltyFunc) (*Augmentation, error) { return core.Augment(t, p) }

// CheckTheorem1 verifies min-cost max-flow on G′ ≡ max-flow on G with
// dynamic capacities for one commodity.
func CheckTheorem1(t *Topology, src, dst NodeID, p PenaltyFunc) (Theorem1Report, error) {
	return core.CheckTheorem1(t, src, dst, p)
}

// Penalty functions.
var (
	// PenaltyFromMatrix charges each fake link its configured penalty
	// (Algorithm 1 verbatim).
	PenaltyFromMatrix PenaltyFunc = core.PenaltyFromMatrix
	// PenaltyTrafficProportional charges by current link traffic (the
	// paper's suggested default).
	PenaltyTrafficProportional PenaltyFunc = core.PenaltyTrafficProportional
	// PenaltyUnitWeights is the short-paths mode of Figure 7c.
	PenaltyUnitWeights PenaltyFunc = core.PenaltyUnitWeights
)

// Traffic engineering.
type (
	// Demand is one commodity.
	Demand = te.Demand
	// Allocation is a TE run's output.
	Allocation = te.Allocation
	// DemandResult is the per-demand slice of an allocation.
	DemandResult = te.DemandResult
	// Algorithm is a TE scheme; all implementations treat the graph as
	// opaque, which is what lets them run unmodified on augmented
	// topologies.
	Algorithm = te.Algorithm
	// ShortestPath is single-shortest-path (OSPF-like) routing.
	ShortestPath = te.ShortestPath
	// Greedy is sequential min-cost flow per demand.
	Greedy = te.Greedy
	// KPath is SWAN-like k-shortest-path water-filling.
	KPath = te.KPath
	// MaxConcurrent is the Garg–Könemann max concurrent flow FPTAS.
	MaxConcurrent = te.MaxConcurrent
)

// CheckFeasible validates an allocation against a graph's capacities.
func CheckFeasible(g *Graph, a *Allocation) error { return te.CheckFeasible(g, a) }

// Modulation / physical layer.
type (
	// Gbps is a capacity in gigabits per second.
	Gbps = modulation.Gbps
	// Mode is one rung of the modulation ladder.
	Mode = modulation.Mode
	// Ladder is the capacity ladder with SNR thresholds.
	Ladder = modulation.Ladder
)

// DefaultLadder is the paper-calibrated ladder: 3.0 dB → 50 Gbps,
// 6.5 dB → 100 Gbps, up to 15.5 dB → 200 Gbps.
func DefaultLadder() *Ladder { return modulation.Default() }

// Transceiver model.
type (
	// Transceiver is the simulated bandwidth variable transceiver.
	Transceiver = bvt.Transceiver
	// TransceiverConfig configures one.
	TransceiverConfig = bvt.Config
	// Driver programs modulation changes over MDIO.
	Driver = bvt.Driver
	// ChangeReport is one measured modulation change.
	ChangeReport = bvt.ChangeReport
	// Method selects power-cycle vs hitless reconfiguration.
	Method = bvt.Method
)

// Reconfiguration methods.
const (
	// MethodPowerCycle is today's firmware flow (~68 s downtime).
	MethodPowerCycle = bvt.MethodPowerCycle
	// MethodHot keeps the laser lit (~35 ms downtime).
	MethodHot = bvt.MethodHot
)

// NewTransceiver builds a simulated BVT.
func NewTransceiver(cfg TransceiverConfig) (*Transceiver, error) { return bvt.New(cfg) }

// NewDriver wraps a transceiver (or any MDIO device) for modulation
// programming.
func NewDriver(dev bvt.MDIO, l *Ladder) *Driver { return bvt.NewDriver(dev, l) }
