package rwc_test

import (
	"context"
	"testing"
	"time"

	"repro/rwc"
)

func TestControllerThroughPublicAPI(t *testing.T) {
	g := rwc.NewGraph()
	s, d := g.AddNode("s"), g.AddNode("d")
	g.AddEdge(rwc.Edge{From: s, To: d, Weight: 1})
	ctrl, err := rwc.NewController(g, 100, rwc.ControllerConfig{UpgradeHoldObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.ObserveSNR(0, 17); err != nil {
		t.Fatal(err)
	}
	plan, err := ctrl.Step([]rwc.Demand{{Src: s, Dst: d, Volume: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Orders) != 1 || plan.Orders[0].Kind != rwc.OrderUpgrade {
		t.Fatalf("orders: %+v", plan.Orders)
	}
	cp, err := ctrl.ConsistentStep([]rwc.Demand{{Src: s, Dst: d, Volume: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Final == nil {
		t.Fatal("consistent plan missing final state")
	}
}

func TestTelemetryThroughPublicAPI(t *testing.T) {
	srv := rwc.NewTelemetryServer([]string{"l0"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	defer srv.Close()
	c, err := rwc.DialTelemetry(ctx, srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.LinkNames(); len(got) != 1 || got[0] != "l0" {
		t.Fatalf("catalog = %v", got)
	}
	go func() {
		for i := 0; i < 100; i++ {
			_ = srv.Publish(rwc.TelemetrySample{LinkIndex: 0, Time: time.Now(), SNRdB: 12})
			time.Sleep(5 * time.Millisecond)
		}
	}()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	s, err := c.Next()
	if err != nil {
		t.Fatal(err)
	}
	if s.SNRdB != 12 {
		t.Fatalf("sample = %+v", s)
	}
	srv.Close()
	<-done
}

func TestOpticalThroughPublicAPI(t *testing.T) {
	fibers := rwc.NewGraph()
	a, b := fibers.AddNode("a"), fibers.AddNode("b")
	fibers.AddEdge(rwc.Edge{From: a, To: b, Weight: 400})
	net, err := rwc.NewOpticalNetwork(fibers, rwc.OpticalConfig{Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := net.Provision(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Feasible < 175 {
		t.Fatalf("400 km feasible = %v", lp.Feasible)
	}
	top, mapping, err := net.ToTopology(10)
	if err != nil {
		t.Fatal(err)
	}
	if top.G.NumEdges() != 1 || len(mapping) != 1 {
		t.Fatal("topology export wrong")
	}
	if rwc.DefaultQoT().SpanKm != 80 {
		t.Fatal("default QoT params wrong")
	}
}

func TestFleetThroughPublicAPI(t *testing.T) {
	var f rwc.Fleet
	f.Interval = time.Minute
	f.Add(rwc.LinkRecord{Name: "x", Samples: []float64{1, 2}})
	if len(f.Links) != 1 {
		t.Fatal("fleet add failed")
	}
}
