package rwc

import (
	"context"

	"repro/internal/controller"
	"repro/internal/telemetry"
)

// Operational layer: the control loop and the telemetry feed. Together
// with the abstraction these are what a deployment runs: a telemetry
// collector streams per-link SNR, the controller ingests it, steps the
// TE through the augmentation, and emits modulation orders.

type (
	// Controller is the SNR-adaptive control loop: telemetry in,
	// modulation orders and flow assignments out.
	Controller = controller.Controller
	// ControllerConfig tunes hysteresis, margins, TE and penalties.
	ControllerConfig = controller.Config
	// Order is one modulation change the controller wants executed.
	Order = controller.Order
	// OrderKind distinguishes forced downgrades from TE upgrades.
	OrderKind = controller.OrderKind
	// Plan is one control-loop iteration's output.
	Plan = controller.Plan
	// ConsistentPlan is the three-state (§4.2) update plan.
	ConsistentPlan = controller.ConsistentPlan
)

// Order kinds.
const (
	// OrderForcedDowngrade is an SNR-driven capacity flap.
	OrderForcedDowngrade = controller.OrderForcedDowngrade
	// OrderUpgrade is a TE-decided capacity increase.
	OrderUpgrade = controller.OrderUpgrade
)

// NewController builds a control loop over a physical topology whose
// links start at the given capacity.
func NewController(g *Graph, initial Gbps, cfg ControllerConfig) (*Controller, error) {
	return controller.New(g, initial, cfg)
}

type (
	// TelemetryServer streams per-link SNR samples to subscribers.
	TelemetryServer = telemetry.Server
	// TelemetryClient subscribes to a telemetry stream.
	TelemetryClient = telemetry.Client
	// TelemetrySample is one SNR observation on the wire.
	TelemetrySample = telemetry.Sample
	// Fleet is stored link telemetry (binary codec + JSON summary).
	Fleet = telemetry.Fleet
	// LinkRecord is one link's stored telemetry.
	LinkRecord = telemetry.LinkRecord
)

// NewTelemetryServer creates a streaming server for the given link
// catalog.
func NewTelemetryServer(linkNames []string) *TelemetryServer {
	return telemetry.NewServer(linkNames)
}

// DialTelemetry subscribes to a telemetry server.
func DialTelemetry(ctx context.Context, addr string) (*TelemetryClient, error) {
	return telemetry.Dial(ctx, addr)
}
