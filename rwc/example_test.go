package rwc_test

import (
	"fmt"

	"repro/rwc"
)

// ExampleAugment reproduces the library's core flow: a link whose SNR
// supports double its configured rate, a demand that needs the
// headroom, and a TE run that decides the upgrade.
func ExampleAugment() {
	g := rwc.NewGraph()
	a, b := g.AddNode("A"), g.AddNode("B")
	link := g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 100, Weight: 1})

	top := rwc.NewTopology(g)
	if err := top.SetUpgrade(link, 100, 50); err != nil {
		fmt.Println(err)
		return
	}

	aug, err := rwc.Augment(top, rwc.PenaltyFromMatrix)
	if err != nil {
		fmt.Println(err)
		return
	}
	alloc, err := rwc.Greedy{}.Allocate(aug.Graph, []rwc.Demand{{Src: a, Dst: b, Volume: 150}})
	if err != nil {
		fmt.Println(err)
		return
	}
	dec, err := aug.Translate(rwc.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, ch := range dec.Changes {
		fmt.Printf("upgrade link %d: %.0f -> %.0f Gbps (%.0f Gbps rides the upgrade)\n",
			ch.Edge, ch.OldCapacity, ch.NewCapacity, ch.FlowOnFake)
	}
	// Output:
	// upgrade link 0: 100 -> 200 Gbps (50 Gbps rides the upgrade)
}

// ExampleLadder_FeasibleCapacity shows the SNR-to-capacity lookup the
// whole system revolves around.
func ExampleLadder_FeasibleCapacity() {
	ladder := rwc.DefaultLadder()
	for _, snr := range []float64{2.0, 4.5, 7.0, 14.0, 16.0} {
		if m, ok := ladder.FeasibleCapacity(snr); ok {
			fmt.Printf("%.1f dB -> %.0f Gbps (%s)\n", snr, float64(m.Capacity), m.Format)
		} else {
			fmt.Printf("%.1f dB -> link down\n", snr)
		}
	}
	// Output:
	// 2.0 dB -> link down
	// 4.5 dB -> 50 Gbps (BPSK)
	// 7.0 dB -> 100 Gbps (QPSK)
	// 14.0 dB -> 175 Gbps (8QAM/16QAM hybrid)
	// 16.0 dB -> 200 Gbps (16QAM)
}

// ExampleCheckTheorem1 verifies the paper's equivalence theorem on a
// small instance.
func ExampleCheckTheorem1() {
	g := rwc.NewGraph()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	e1 := g.AddEdge(rwc.Edge{From: a, To: b, Capacity: 100})
	e2 := g.AddEdge(rwc.Edge{From: b, To: c, Capacity: 100})
	top := rwc.NewTopology(g)
	_ = top.SetUpgrade(e1, 100, 10)
	_ = top.SetUpgrade(e2, 100, 10)
	rep, err := rwc.CheckTheorem1(top, a, c, rwc.PenaltyFromMatrix)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("base %.0f, dynamic %.0f, augmented %.0f, holds: %v\n",
		rep.BaseValue, rep.FullValue, rep.AugmentedValue, rep.Holds)
	// Output:
	// base 100, dynamic 200, augmented 200, holds: true
}
