// Fibbing demonstrates the connection the paper draws to Vissicchio et
// al.'s Fibbing (SIGCOMM 2015): the augmented topology works even
// WITHOUT a central TE. Advertise the fake link into a plain link-state
// IGP with an attractive metric and distributed destination-based
// routing pulls traffic onto it; the load the fake link attracts
// translates into the same modulation-upgrade order a TE would emit.
//
// Run with: go run ./examples/fibbing
package main

import (
	"fmt"
	"log"

	"repro/internal/igp"

	"repro/rwc"
)

func main() {
	// The Figure-7 square again, IGP metrics = 1 everywhere.
	g := rwc.NewGraph()
	nodes := map[string]rwc.NodeID{}
	for _, n := range []string{"A", "B", "C", "D"} {
		nodes[n] = g.AddNode(n)
	}
	top := rwc.NewTopology(g)
	add := func(u, v string, upgradable bool) {
		for _, p := range [][2]string{{u, v}, {v, u}} {
			id := g.AddEdge(rwc.Edge{From: nodes[p[0]], To: nodes[p[1]], Capacity: 100, Weight: 1})
			if upgradable {
				if err := top.SetUpgrade(id, 100, 1); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	add("A", "B", true)
	add("C", "D", true)
	add("A", "C", false)
	add("B", "D", false)

	aug, err := rwc.Augment(top, rwc.PenaltyFromMatrix)
	if err != nil {
		log.Fatal(err)
	}

	// Fibbing move: inject the A->B fake link into the LSDB with metric
	// 0.9 — slightly better than the real link — so every router's SPF
	// prefers it for A->B traffic.
	fakeAB := aug.FakeFor[0]
	lsdb := rwc.NewGraph()
	lsdb.AddNodes(aug.Graph.NumNodes())
	for _, e := range aug.Graph.Edges() {
		w := e.Weight
		if e.ID == fakeAB {
			w = 0.9
		}
		lsdb.AddEdge(rwc.Edge{From: e.From, To: e.To, Capacity: e.Capacity, Weight: w})
	}

	rt, err := igp.ComputeRoutes(lsdb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LSDB contains the fake A->B link at metric 0.9 (real links at 1.0)")

	// 150 Gbps of destination-routed traffic A -> B.
	load, err := rt.Forward(nodes["A"], nodes["B"], 150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IGP forwarded 150 Gbps A->B; fake link attracted %.0f Gbps\n", load[fakeAB])
	fmt.Printf("max link utilization before upgrade executes: %.2f (fake link is not real capacity yet!)\n",
		rt.MaxUtilization(load))

	// Translate the IGP load like any TE output.
	dec, err := aug.Translate(rwc.FlowResult{Value: 150, EdgeFlow: load})
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range dec.Changes {
		e := g.Edge(ch.Edge)
		fmt.Printf("translated order: re-modulate %s->%s from %.0fG to %.0fG\n",
			g.NodeName(e.From), g.NodeName(e.To), ch.OldCapacity, ch.NewCapacity)
	}
	fmt.Println("\nsame abstraction, no central TE: distributed SPF routing decided the upgrade")
}
