// Provisioning shows the optical layer the paper's IP links rest on: a
// fiber plant, lightpath provisioning with first-fit wavelength
// assignment and QoT admission, and — the punchline — the automatic
// export of the provisioned network as the Algorithm-1 input with the
// upgrade matrices already filled in from each lightpath's SNR
// headroom.
//
// Run with: go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"repro/rwc"
)

func main() {
	// Fiber plant (lengths in km).
	fibers := rwc.NewGraph()
	sea := fibers.AddNode("SEA")
	slc := fibers.AddNode("SLC")
	den := fibers.AddNode("DEN")
	chi := fibers.AddNode("CHI")
	nyc := fibers.AddNode("NYC")
	both := func(u, v rwc.NodeID, km float64) {
		fibers.AddEdge(rwc.Edge{From: u, To: v, Weight: km})
		fibers.AddEdge(rwc.Edge{From: v, To: u, Weight: km})
	}
	both(sea, slc, 1120)
	both(slc, den, 600)
	both(den, chi, 1480)
	both(chi, nyc, 1270)
	both(sea, chi, 3300) // express route

	optical, err := rwc.NewOpticalNetwork(fibers, rwc.OpticalConfig{Channels: 40})
	if err != nil {
		log.Fatal(err)
	}

	// Provision the IP topology: wavelengths for each adjacency plus an
	// express SEA-NYC wavelength.
	fmt.Println("provisioning lightpaths (first-fit wavelength, QoT admission):")
	for _, pair := range [][2]rwc.NodeID{
		{sea, slc}, {slc, sea}, {slc, den}, {den, slc},
		{den, chi}, {chi, den}, {chi, nyc}, {nyc, chi},
		{sea, nyc}, {nyc, sea},
	} {
		lp, err := optical.Provision(pair[0], pair[1])
		if err != nil {
			log.Fatalf("provision %s->%s: %v",
				fibers.NodeName(pair[0]), fibers.NodeName(pair[1]), err)
		}
		fmt.Printf("  λ%02d %s->%s: %4.0f km, SNR %4.1f dB, deployed %3.0fG, feasible %3.0fG\n",
			lp.Channel, fibers.NodeName(lp.Src), fibers.NodeName(lp.Dst),
			lp.LengthKm, lp.SNRdB, float64(lp.Capacity), float64(lp.Feasible))
	}
	fmt.Printf("spectrum utilization: %.1f%%\n\n", 100*optical.Utilization())

	// Export the Algorithm-1 input: topology + upgrade matrices derived
	// from QoT headroom.
	top, mapping, err := optical.ToTopology(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported TE input: %d IP links, %d upgradable\n",
		top.G.NumEdges(), len(top.Upgrades))

	// TE round: a big SEA->NYC demand.
	aug, err := rwc.Augment(top, rwc.PenaltyFromMatrix)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := rwc.Greedy{}.Allocate(aug.Graph, []rwc.Demand{
		{Src: sea, Dst: nyc, Volume: 250},
	})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := aug.Translate(rwc.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTE shipped %.0f of 250 Gbps SEA->NYC; %d modulation upgrades ordered\n",
		dec.Value, len(dec.Changes))

	// Commit the upgrades to the optical layer.
	if err := optical.ApplyDecision(dec, mapping); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlightpaths after the TE round:")
	for _, lp := range optical.Lightpaths() {
		marker := ""
		if lp.Capacity > 100 {
			marker = "  <- upgraded"
		}
		fmt.Printf("  λ%02d %s->%s: %3.0fG of %3.0fG feasible%s\n",
			lp.Channel, fibers.NodeName(lp.Src), fibers.NodeName(lp.Dst),
			float64(lp.Capacity), float64(lp.Feasible), marker)
	}
}
