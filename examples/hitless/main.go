// Hitless reproduces the §3.1 testbed interaction with a bandwidth
// variable transceiver over its MDIO register interface: the classic
// power-cycling modulation change (~68 s of downtime) against the
// laser-on reprogramming path (~35 ms), and the firmware constraint
// that makes the former the default.
//
// Run with: go run ./examples/hitless
package main

import (
	"fmt"
	"log"

	"repro/rwc"

	"repro/internal/bvt"
)

func main() {
	// A transceiver whose firmware does NOT support hot reprogramming —
	// state of the art per the paper.
	classic, err := rwc.NewTransceiver(rwc.TransceiverConfig{
		InitialMode: 100, ChannelSNRdB: 20, HotCapable: false, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Talk to it over raw MDIO, as the testbed harness does.
	fmt.Println("== raw MDIO interaction ==")
	status, _ := classic.ReadReg(bvt.RegStatus)
	snr, _ := classic.ReadReg(bvt.RegSNR)
	fmt.Printf("status register: 0x%04x (laser|dsp|lock), SNR register: %.1f dB\n",
		status, float64(snr)/10)

	// The firmware rejects a mode write while the laser is lit.
	if err := classic.WriteReg(bvt.RegMode, uint16(3)); err != nil {
		fmt.Printf("direct mode write rejected: %v\n", err)
	}

	// So the driver must power-cycle: laser off → reprogram → laser on.
	drv := rwc.NewDriver(classic, nil)
	rep, err := drv.ChangeModulation(150, rwc.MethodPowerCycle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-cycle change 100→150 Gbps: %v downtime\n\n", rep.Downtime)

	// A hot-capable module keeps the laser on.
	hot, err := rwc.NewTransceiver(rwc.TransceiverConfig{
		InitialMode: 100, ChannelSNRdB: 20, HotCapable: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	hotDrv := rwc.NewDriver(hot, nil)
	rep, err = hotDrv.ChangeModulation(150, rwc.MethodHot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== hitless path ==\nhot change 100→150 Gbps: %v downtime\n\n", rep.Downtime)

	// The full testbed experiment: 200 changes each way (Figure 6b).
	fmt.Println("== 200-change testbed (Figure 6b) ==")
	caps := []rwc.Gbps{100, 150, 200}
	for _, m := range []rwc.Method{rwc.MethodPowerCycle, rwc.MethodHot} {
		reports, err := bvt.Testbed(rwc.TransceiverConfig{
			InitialMode: 100, ChannelSNRdB: 20, Seed: 11,
		}, caps, 200, m)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, r := range reports {
			total += r.Downtime.Seconds()
		}
		fmt.Printf("%-12s mean downtime: %8.4f s over %d changes\n",
			m, total/float64(len(reports)), len(reports))
	}
	fmt.Println("\npaper: 68 s vs 35 ms — the laser power-cycle is the deployment blocker")
}
