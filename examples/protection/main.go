// Protection combines classic 1+1 protection routing with dynamic link
// capacities: a premium flow gets an edge-disjoint working/protection
// path pair (Suurballe), and when the working path's fiber degrades,
// the link flaps to 50 Gbps instead of failing — so the premium flow
// fails over while best-effort traffic keeps flowing on the degraded
// link instead of being rerouted too.
//
// Run with: go run ./examples/protection
package main

import (
	"fmt"
	"log"

	"repro/rwc"
)

func main() {
	// A five-node ring with one chord — enough for disjoint paths.
	g := rwc.NewGraph()
	names := []string{"SEA", "SLC", "DEN", "CHI", "NYC"}
	ids := make([]rwc.NodeID, len(names))
	for i, n := range names {
		ids[i] = g.AddNode(n)
	}
	edge := func(u, v int, w float64) rwc.EdgeID {
		return g.AddEdge(rwc.Edge{From: ids[u], To: ids[v], Capacity: 100, Weight: w})
	}
	seaSLC := edge(0, 1, 7)
	edge(1, 2, 5)  // SLC-DEN
	edge(2, 3, 9)  // DEN-CHI
	edge(3, 4, 8)  // CHI-NYC
	edge(0, 3, 20) // SEA-CHI long way
	edge(1, 4, 19) // SLC-NYC chord

	ladder := rwc.DefaultLadder()

	// 1. Protection routing for the premium flow SEA -> NYC.
	pair, ok := g.EdgeDisjointShortestPair(ids[0], ids[4])
	if !ok {
		log.Fatal("no disjoint pair")
	}
	printPath := func(label string, p rwc.Path) {
		fmt.Printf("%s:", label)
		for _, n := range p.Nodes {
			fmt.Printf(" %s", g.NodeName(n))
		}
		fmt.Printf("  (weight %.0f)\n", p.WeightOn(g))
	}
	printPath("working path   ", pair.Working)
	printPath("protection path", pair.Protection)

	// 2. The SEA-SLC fiber degrades: SNR falls from 14 dB to 4 dB.
	fmt.Println("\nSEA-SLC amplifier degrades: SNR 14 dB -> 4 dB")
	before, _ := ladder.FeasibleCapacity(14)
	after, okAfter := ladder.FeasibleCapacity(4)
	if !okAfter {
		log.Fatal("link would be dark")
	}
	fmt.Printf("feasible capacity: %v Gbps -> %v Gbps (binary rule would declare it DOWN)\n",
		before.Capacity, after.Capacity)
	g.SetCapacity(seaSLC, float64(after.Capacity))

	// 3. Premium flow fails over to the protection path if the working
	//    path crosses the degraded link.
	usesDegraded := func(p rwc.Path) bool {
		for _, id := range p.Edges {
			if id == seaSLC {
				return true
			}
		}
		return false
	}
	if usesDegraded(pair.Working) {
		fmt.Println("premium flow: working path degraded -> switching to protection path")
	} else {
		fmt.Println("premium flow: working path unaffected")
	}

	// 4. Best-effort traffic keeps using the degraded link at 50 Gbps.
	alloc, err := rwc.Greedy{}.Allocate(g, []rwc.Demand{
		{Src: ids[0], Dst: ids[1], Volume: 60}, // SEA -> SLC best effort
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-effort SEA->SLC: shipped %.0f of 60 Gbps over the degraded link\n",
		alloc.Results[0].Shipped)
	fmt.Println("\nwith the binary rule this traffic would have been rerouted or dropped entirely")
}
