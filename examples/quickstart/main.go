// Quickstart walks through the paper's Figure 7 example with the
// public API: a four-node WAN whose (A,B) and (C,D) links can double
// their capacity, demands that outgrow the static configuration, and a
// TE algorithm that — without knowing anything about optics — decides
// which links to re-modulate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/rwc"
)

func main() {
	// Physical topology: bidirectional 100 Gbps links A-B, C-D, A-C,
	// B-D (Figure 7a).
	g := rwc.NewGraph()
	nodes := map[string]rwc.NodeID{}
	for _, n := range []string{"A", "B", "C", "D"} {
		nodes[n] = g.AddNode(n)
	}
	top := rwc.NewTopology(g)
	addLink := func(u, v string, upgradable bool) {
		for _, pair := range [][2]string{{u, v}, {v, u}} {
			id := g.AddEdge(rwc.Edge{
				From: nodes[pair[0]], To: nodes[pair[1]],
				Capacity: 100, Weight: 1,
			})
			if upgradable {
				// SNR supports +100 Gbps; re-modulating costs 100
				// (per unit of traffic riding the upgrade).
				if err := top.SetUpgrade(id, 100, 100); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	addLink("A", "B", true)
	addLink("C", "D", true)
	addLink("A", "C", false)
	addLink("B", "D", false)

	// Demands grew from 100 to 125 Gbps each (the paper's example).
	demands := []rwc.Demand{
		{Src: nodes["A"], Dst: nodes["B"], Volume: 125},
		{Src: nodes["C"], Dst: nodes["D"], Volume: 125},
	}

	// Step 1 (Algorithm 1): augment the topology with fake links.
	aug, err := rwc.Augment(top, rwc.PenaltyFromMatrix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("physical edges: %d, augmented edges: %d (one fake per upgradable link)\n",
		g.NumEdges(), aug.Graph.NumEdges())

	// Step 2: run an UNMODIFIED TE algorithm on the augmented graph.
	alloc, err := rwc.Greedy{}.Allocate(aug.Graph, demands)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: translate the TE output into modulation decisions and
	// physical flows.
	dec, err := aug.Translate(rwc.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nshipped %.0f of %.0f Gbps demanded\n", dec.Value, 250.0)
	fmt.Printf("capacity changes instructed: %d\n", len(dec.Changes))
	for _, ch := range dec.Changes {
		e := g.Edge(ch.Edge)
		fmt.Printf("  re-modulate %s->%s: %.0f -> %.0f Gbps (%.0f Gbps rides the upgrade)\n",
			g.NodeName(e.From), g.NodeName(e.To),
			ch.OldCapacity, ch.NewCapacity, ch.FlowOnFake)
	}

	fmt.Println("\nper-demand paths:")
	for _, r := range alloc.Results {
		fmt.Printf("  %s -> %s (%.0f Gbps):\n",
			g.NodeName(r.Demand.Src), g.NodeName(r.Demand.Dst), r.Shipped)
		for _, pf := range r.Paths {
			fmt.Printf("    %.0f Gbps via", pf.Amount)
			for _, n := range pf.Path.Nodes {
				fmt.Printf(" %s", aug.Graph.NodeName(n))
			}
			fmt.Println()
		}
	}

	fmt.Println("\nthe TE never saw the optical layer — the augmentation did the translation")
}
