// Controller wires the whole system together the way a deployment
// would: a telemetry collector streams per-link SNR over TCP, the
// control loop subscribes, steps an unmodified TE algorithm through the
// graph abstraction every round, and executes the resulting modulation
// orders on (simulated) bandwidth variable transceivers.
//
// The scenario: a three-node line network; demand outgrows the static
// configuration (→ TE-decided upgrades); then an amplifier degrades one
// link (→ forced capacity flap instead of an outage); then it recovers
// (→ restore).
//
// Run with: go run ./examples/controller
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/rwc"
)

func main() {
	// Physical topology: s -> m -> d, one wavelength per edge.
	g := rwc.NewGraph()
	s, m, d := g.AddNode("SEA"), g.AddNode("DEN"), g.AddNode("NYC")
	g.AddEdge(rwc.Edge{From: s, To: m, Weight: 1})
	g.AddEdge(rwc.Edge{From: m, To: d, Weight: 1})
	linkNames := []string{"SEA-DEN", "DEN-NYC"}

	ctrl, err := rwc.NewController(g, 100, rwc.ControllerConfig{
		UpgradeHoldObservations: 2,
		ChangeDowntime:          35 * time.Millisecond, // hitless BVTs
	})
	if err != nil {
		log.Fatal(err)
	}

	// One simulated transceiver per link, executing the orders.
	transceivers := make([]*rwc.Transceiver, 2)
	drivers := make([]*rwc.Driver, 2)
	for i := range transceivers {
		transceivers[i], err = rwc.NewTransceiver(rwc.TransceiverConfig{
			InitialMode: 100, ChannelSNRdB: 17, HotCapable: true, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		drivers[i] = rwc.NewDriver(transceivers[i], nil)
	}

	// Telemetry collector: streams SNR samples over TCP.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := rwc.NewTelemetryServer(linkNames)
	go func() {
		if err := srv.Serve(ctx, "127.0.0.1:0"); err != nil {
			log.Printf("telemetry server: %v", err)
		}
	}()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	defer srv.Close()

	client, err := rwc.DialTelemetry(ctx, srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("telemetry: subscribed to %v at %s\n\n", client.LinkNames(), srv.Addr())

	// The SNR script: per round, per link.
	script := [][]float64{
		{17.0, 17.0}, // healthy
		{17.0, 17.0}, // healthy (hysteresis satisfied)
		{17.0, 17.0}, // demand grows → upgrades
		{4.5, 17.0},  // amplifier degradation on SEA-DEN
		{17.0, 17.0}, // repair → restore
	}
	demandPerRound := []float64{80, 80, 180, 180, 180}

	for round := range script {
		// Collector publishes; controller consumes over the wire.
		for li, snr := range script[round] {
			if err := srv.Publish(rwc.TelemetrySample{
				LinkIndex: li, Time: time.Now(), SNRdB: snr,
			}); err != nil {
				log.Fatal(err)
			}
		}
		for range script[round] {
			if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
				log.Fatal(err)
			}
			sample, err := client.Next()
			if err != nil {
				log.Fatal(err)
			}
			transceivers[sample.LinkIndex].SetChannelSNR(sample.SNRdB)
			if _, err := ctrl.ObserveSNR(rwc.EdgeID(sample.LinkIndex), sample.SNRdB); err != nil {
				log.Fatal(err)
			}
		}

		plan, err := ctrl.Step([]rwc.Demand{{Src: s, Dst: d, Volume: demandPerRound[round]}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d (demand %.0fG): shipped %.0fG, %d orders\n",
			round, demandPerRound[round], plan.Decision.Value, len(plan.Orders))

		// Execute orders on the transceivers.
		for _, o := range plan.Orders {
			if o.To == 0 {
				fmt.Printf("  %s: %v — link dark (%vG -> 0)\n", linkNames[o.Edge], o.Kind, o.From)
				continue
			}
			rep, err := drivers[o.Edge].ChangeModulation(o.To, rwc.MethodHot)
			if err != nil {
				log.Fatalf("  %s: change failed: %v", linkNames[o.Edge], err)
			}
			fmt.Printf("  %s: %v %vG -> %vG (downtime %v)\n",
				linkNames[o.Edge], o.Kind, o.From, o.To, rep.Downtime)
		}
	}

	fmt.Println("\ntotal transceiver downtime across the whole scenario:")
	for i, tr := range transceivers {
		fmt.Printf("  %s: %v\n", linkNames[i], tr.Downtime())
	}
	fmt.Println("\nwith power-cycling transceivers each change would have cost ~68 s instead")
}
