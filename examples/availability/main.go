// Availability shows §2.2's headline scenario: an amplifier failure
// drops a link's SNR from 12 dB to 4.5 dB. Under today's binary rule
// the link fails outright (SNR < 6.5 dB); with dynamic capacities it
// flaps to 50 Gbps (SNR ≥ 3.0 dB) and keeps carrying traffic while the
// repair happens.
//
// Run with: go run ./examples/availability
package main

import (
	"fmt"
	"log"

	"repro/rwc"
)

func main() {
	ladder := rwc.DefaultLadder()

	// A transceiver running a healthy 100 Gbps wavelength.
	tr, err := rwc.NewTransceiver(rwc.TransceiverConfig{
		InitialMode:  100,
		ChannelSNRdB: 12.0,
		HotCapable:   true, // §3.1's efficient reconfiguration
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	drv := rwc.NewDriver(tr, ladder)

	fmt.Println("t0: healthy link")
	report(tr, ladder)

	// An amplifier fails: SNR collapses to 4.5 dB.
	fmt.Println("\nt1: amplifier failure, SNR drops to 4.5 dB")
	tr.SetChannelSNR(4.5)
	report(tr, ladder)
	fmt.Println("    binary rule: link DOWN (4.5 dB < 6.5 dB threshold) — an outage ticket")

	// Dynamic capacity: flap down to the feasible rate instead.
	feasible, ok := ladder.FeasibleCapacity(4.5)
	if !ok {
		log.Fatal("no feasible mode — would be a real outage")
	}
	fmt.Printf("\nt2: dynamic operation re-modulates to the feasible rate (%v Gbps)\n", feasible.Capacity)
	rep, err := drv.ChangeModulation(feasible.Capacity, rwc.MethodHot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    hitless change took %v of downtime (vs ~68 s with a laser power-cycle)\n", rep.Downtime)
	report(tr, ladder)

	// Repair completes; SNR recovers; upgrade back.
	fmt.Println("\nt3: repair completes, SNR back to 12 dB — upgrade to 150 Gbps")
	tr.SetChannelSNR(12)
	rep, err = drv.ChangeModulation(150, rwc.MethodHot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    change took %v of downtime\n", rep.Downtime)
	report(tr, ladder)

	fmt.Println("\noutcome: one outage ticket avoided; the link carried 50 Gbps through the failure")
	fmt.Println("(the paper finds ≥25% of WAN failures keep SNR ≥ 3 dB and could end like this)")
}

// report prints the link state.
func report(tr *rwc.Transceiver, ladder *rwc.Ladder) {
	m, _ := tr.Mode()
	state := "UP"
	if !tr.LinkUp() {
		state = "DOWN"
	}
	fmt.Printf("    mode %v Gbps (%v, needs %.1f dB) — link %s\n",
		m.Capacity, m.Format, m.MinSNRdB, state)
}
