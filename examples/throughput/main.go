// Throughput runs the paper's headline simulation on a realistic WAN:
// the Abilene backbone under oversubscribed gravity traffic, operated
// three ways — static 100 Gbps (today), static at the maximum the SNR
// ever allows (tempting but fragile), and dynamic capacities through
// the graph abstraction.
//
// This example uses the internal simulator directly (it is an
// experiment driver, not a library client); see examples/quickstart
// for pure public-API usage.
//
// Run with: go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/wan"
)

func main() {
	net := wan.Abilene(2) // 11 nodes, 14 fibers, 2 wavelengths each

	sim, err := wan.NewSimulation(wan.SimConfig{
		Net:            net,
		Rounds:         28, // one week of 6-hourly TE rounds
		RoundInterval:  6 * time.Hour,
		Seed:           2017,
		DemandFraction: 1.2, // demand outgrew the static backbone by 20%
		DemandSigma:    0.1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Abilene backbone, 28 TE rounds, offered load 1.2x static capacity")
	fmt.Printf("%-12s %15s %18s %10s %12s\n",
		"policy", "mean satisfied", "total shipped Gbps", "changes", "dark rounds")

	var static, dynamic float64
	for _, p := range []wan.Policy{wan.PolicyStatic100, wan.PolicyStaticMax, wan.PolicyDynamic} {
		res, err := sim.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		dark := 0
		for _, m := range res.Rounds {
			dark += m.LinksDark
		}
		fmt.Printf("%-12s %14.1f%% %18.0f %10d %12d\n",
			p, 100*res.MeanSatisfied(), res.TotalShipped(), res.TotalChanges(), dark)
		switch p {
		case wan.PolicyStatic100:
			static = res.TotalShipped()
		case wan.PolicyDynamic:
			dynamic = res.TotalShipped()
		}
	}

	fmt.Printf("\ndynamic capacities shipped %.2fx the traffic of static 100 Gbps operation\n",
		dynamic/static)
	fmt.Println("(the paper projects 75-100% per-link capacity gains from SNR-adaptive modulation)")
}
