// Package repro is the root of the Run-Walk-Crawl reproduction
// (Singh et al., "Run, Walk, Crawl: Towards Dynamic Link Capacities",
// HotNets 2017). The public library API lives in repro/rwc; the
// substrates in internal/; runnable tools in cmd/ and examples/. The
// root package exists to host bench_test.go, the per-figure benchmark
// harness described in DESIGN.md.
package repro
