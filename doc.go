// Package repro is the root of the Run-Walk-Crawl reproduction
// (Singh et al., "Run, Walk, Crawl: Towards Dynamic Link Capacities",
// HotNets 2017). The public library API lives in repro/rwc; the
// substrates in internal/; runnable tools in cmd/ and examples/. The
// root package exists to host bench_test.go, the per-figure benchmark
// harness described in DESIGN.md.
//
// The module enforces its determinism and unit invariants mechanically
// with rwc-lint (internal/lint, `make lint`): norandglobal (no
// math/rand outside internal/rng), nowalltime (no wall-clock reads in
// simulation packages), nofloateq (no ==/!= on floats outside tests;
// use the internal/stats tolerance helpers), and unitmix (no dB value
// into a Gbps parameter or vice versa). See DESIGN.md § Correctness
// tooling.
package repro
