# Convenience targets for the Run-Walk-Crawl reproduction.

GO ?= go

.PHONY: all build lint lint-json lint-ext vuln test test-short race race-short cover bench bench-json experiments experiments-quick examples serve-demo flight-demo clean

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# rwc-lint is the repo-specific determinism/unit-invariant suite
# (internal/lint): AST-local checks (norandglobal, nowalltime,
# nofloateq, unitmix), interprocedural determinism-taint and
# concurrency analyzers (mapiter, goroleak, chanorder, seriesname),
# and the suppression meta-check (nolintpolicy). The baseline file is
# kept empty — the module is swept clean — but stays wired in so a
# temporarily accepted finding has exactly one place to live.
lint:
	$(GO) run ./cmd/rwc-lint -baseline lint.baseline.json ./...

# Machine-readable findings for CI: deterministic JSON on stdout.
lint-json:
	$(GO) run ./cmd/rwc-lint -baseline lint.baseline.json -json ./...

# External linters are advisory: run them when installed, no-op with a
# pointer when not, so offline builds never block on missing tools.
lint-ext:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint-ext: staticcheck not installed; skipping"; \
		echo "lint-ext: install with: go install honnef.co/go/tools/cmd/staticcheck@latest"; \
	fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping"; \
		echo "vuln: install with: go install golang.org/x/vuln/cmd/govulncheck@latest"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

race-short:
	$(GO) test -race -short ./...

cover:
	$(GO) test -cover ./internal/... ./rwc/

bench:
	$(GO) test -bench=. -benchmem ./...

# BENCH_SHA / BENCH_DATE label the BENCH_history.jsonl entry; both
# default to git facts (commit SHA and commit date) so the record
# never reads the wall clock. -merge dedupes by SHA, so re-running on
# the same commit updates that commit's entry in place instead of
# appending a duplicate line (which would make rwc-perfdiff's -old-sha
# selection ambiguous).
BENCH_SHA ?= $(shell git rev-parse --short HEAD)
BENCH_DATE ?= $(shell git log -1 --format=%cs)

# Machine-readable record of the quick benchmark suite (root
# bench_test.go runs every figure at Quick scale): benchmark name →
# ns/op, allocs/op, and each b.ReportMetric headline number.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/rwc-benchjson > BENCH_quick.json
	$(GO) test -run '^$$' -bench=History -benchmem ./internal/obs/... | $(GO) run ./cmd/rwc-benchjson -sha "$(BENCH_SHA)" -date "$(BENCH_DATE)" -merge BENCH_history.jsonl
	$(GO) test -run '^$$' -bench='SteadyStateRound|ContinentalRound|ThroughputGains$$' -benchmem -benchtime=1x . | $(GO) run ./cmd/rwc-benchjson -sha "$(BENCH_SHA)" -date "$(BENCH_DATE)" -merge BENCH_history.jsonl

# Regenerate every paper figure (minutes at paper scale).
experiments:
	$(GO) run ./cmd/rwc-experiments

experiments-quick:
	$(GO) run ./cmd/rwc-experiments -quick

# Live operations plane demo: run the WAN simulation with the HTTP
# telemetry server up and keep serving afterwards. While it runs (and
# lingers), browse:
#   http://localhost:6060/metrics      Prometheus exposition
#   http://localhost:6060/runz         run info (seed, sim clock, counts)
#   http://localhost:6060/traces       live SSE trace tail
#   http://localhost:6060/debug/pprof  profiler
# Ctrl-C to stop.
serve-demo:
	$(GO) run ./cmd/rwc-wansim -rounds 28 -policy all \
		-serve localhost:6060 -log info -linger

# Flight recorder demo: record a run, replay it (verifying the
# regenerated artifacts byte-match the originals), explain one link's
# decision chain, and bisect against a fault-injected twin.
flight-demo:
	rm -rf /tmp/rwc-flight-demo && mkdir -p /tmp/rwc-flight-demo
	$(GO) run ./cmd/rwc-wansim -rounds 12 -policy dynamic \
		-metrics-out /tmp/rwc-flight-demo/run.prom \
		-trace-out /tmp/rwc-flight-demo/run.jsonl \
		-flight-out /tmp/rwc-flight-demo/run.flight > /dev/null
	$(GO) run ./cmd/rwc-replay replay /tmp/rwc-flight-demo/run.flight \
		-verify-metrics /tmp/rwc-flight-demo/run.prom \
		-verify-trace /tmp/rwc-flight-demo/run.jsonl
	$(GO) run ./cmd/rwc-replay explain /tmp/rwc-flight-demo/run.flight \
		-round 2 -edge 0
	$(GO) run ./cmd/rwc-wansim -rounds 12 -policy dynamic \
		-override-snr 0,0,5,-5 \
		-flight-out /tmp/rwc-flight-demo/dip.flight > /dev/null
	-$(GO) run ./cmd/rwc-replay bisect \
		/tmp/rwc-flight-demo/run.flight /tmp/rwc-flight-demo/dip.flight

# Service-mode demo: run the reconciler daemon with paced rounds, a
# config file it watches for hot reloads, and the operations plane up.
# While it runs, browse:
#   http://localhost:6060/sliz         service-level indicators + reload log
#   http://localhost:6060/metrics      run registry + live rwc_sli_* series
#   http://localhost:6060/demandz      POST demand batches for admission answers
# Edit /tmp/rwc-daemon-demo/wansimd.json mid-run to trigger a reload;
# touch it unchanged to see a provable no-op. Ctrl-C drains and exits.
daemon-demo:
	rm -rf /tmp/rwc-daemon-demo && mkdir -p /tmp/rwc-daemon-demo
	printf '{"topology":"abilene","rounds":120,"policy":"dynamic"}\n' \
		> /tmp/rwc-daemon-demo/wansimd.json
	$(GO) run ./cmd/rwc-wansimd -config /tmp/rwc-daemon-demo/wansimd.json \
		-serve localhost:6060 -tick 2s -poll 1s -log info

# Load-harness demo: drive a deterministic client load burst at a
# daemon started with `make daemon-demo` and print the JSON report.
loadgen-demo:
	$(GO) run ./cmd/rwc-loadgen -addr localhost:6060 -duration 5s -seed 1

# Run all example programs.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/availability
	$(GO) run ./examples/hitless
	$(GO) run ./examples/throughput
	$(GO) run ./examples/controller
	$(GO) run ./examples/protection
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/fibbing

clean:
	$(GO) clean ./...
