# Convenience targets for the Run-Walk-Crawl reproduction.

GO ?= go

.PHONY: all build test test-short race cover bench experiments experiments-quick examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/telemetry/ ./internal/controller/ ./rwc/

cover:
	$(GO) test -cover ./internal/... ./rwc/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure (minutes at paper scale).
experiments:
	$(GO) run ./cmd/rwc-experiments

experiments-quick:
	$(GO) run ./cmd/rwc-experiments -quick

# Run all example programs.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/availability
	$(GO) run ./examples/hitless
	$(GO) run ./examples/throughput
	$(GO) run ./examples/controller
	$(GO) run ./examples/protection
	$(GO) run ./examples/provisioning
	$(GO) run ./examples/fibbing

clean:
	$(GO) clean ./...
