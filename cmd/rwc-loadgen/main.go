// Command rwc-loadgen drives deterministic client load at a running
// rwc-wansimd and reports what the service sustained.
//
// Usage:
//
//	rwc-loadgen -addr host:port [-duration 3s] [-seed N]
//	            [-scrape-interval 100ms] [-query-interval 250ms]
//	            [-batch-interval 50ms] [-batch-size 16] [-sse 2]
//	            [-nodes 12] [-out report.json]
//
// The offered load is reproducible: gravity-model demand batches
// (POST /demandz), metrics scrapes (GET /metrics), history/SLI reads
// (GET /queryz, /sliz), and SSE trace subscriptions (GET /traces) all
// derive their shape from -seed. The report (stdout, or -out) is a
// JSON artifact of kind "rwc-load": client latency percentiles,
// demand admission totals, SSE delivered-vs-dropped, and daemon-side
// rwc_sli_* deltas over the window — sustained decisions/sec among
// them. rwc-perfdiff understands the kind and gates two reports
// against each other, so a load report checked into CI becomes a
// service-level budget.
//
// Exit status: 0 = report written, 1 = the daemon was unreachable or
// the report could not be written, 2 = usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/load"
)

func main() {
	addr := flag.String("addr", "", "daemon operations-plane address, host:port or full http:// URL (required)")
	duration := flag.Duration("duration", 3*time.Second, "how long to offer load")
	seed := flag.Uint64("seed", 1, "load shape seed (demand volumes, node pairs)")
	scrapeInterval := flag.Duration("scrape-interval", 100*time.Millisecond, "/metrics client cadence")
	queryInterval := flag.Duration("query-interval", 250*time.Millisecond, "/queryz and /sliz client cadence")
	batchInterval := flag.Duration("batch-interval", 50*time.Millisecond, "/demandz batch cadence")
	batchSize := flag.Int("batch-size", 16, "demands per /demandz batch")
	sse := flag.Int("sse", 2, "concurrent /traces SSE subscribers")
	nodes := flag.Int("nodes", 12, "gravity-model node id space")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "rwc-loadgen: -addr is required")
		os.Exit(2)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}

	rep, err := load.Run(load.Options{
		BaseURL:        base,
		Duration:       *duration,
		ScrapeInterval: *scrapeInterval,
		QueryInterval:  *queryInterval,
		BatchInterval:  *batchInterval,
		BatchSize:      *batchSize,
		SSEClients:     *sse,
		Nodes:          *nodes,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-loadgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-loadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "rwc-loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"rwc-loadgen: %s for %v: %.1f decisions/s sustained, scrape p99 %v, %d SSE events (%.0f dropped slow-consumer), %d/%d demands admitted\n",
		base, duration.String(), rep.Service.DecisionsPerSec,
		time.Duration(rep.Scrape.P99Ns), rep.SSE.Events, rep.SSE.DroppedSlowConsumer,
		rep.Demand.Admitted, rep.Demand.Demands)
}
