// Command rwc-provision runs the optical provisioning layer on a
// reference fiber plant: it provisions a wavelength per IP adjacency
// (plus optional express lightpaths), prints the lightpath table with
// QoT-derived SNR and feasible capacity, and summarizes the exported
// Algorithm-1 TE input.
//
// Usage:
//
//	rwc-provision [-topology abilene|us] [-channels N] [-express A,B;C,D]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/spectrum"
	"repro/internal/wan"
)

func main() {
	topology := flag.String("topology", "abilene", "fiber plant: abilene or us")
	channels := flag.Int("channels", 40, "wavelength channels per fiber")
	express := flag.String("express", "", "extra express lightpaths, e.g. \"Seattle,NewYork;LosAngeles,NewYork\"")
	flag.Parse()

	var net *wan.Network
	switch *topology {
	case "abilene":
		net = wan.Abilene(1)
	case "us":
		net = wan.USBackbone(1)
	default:
		fmt.Fprintf(os.Stderr, "rwc-provision: unknown topology %q\n", *topology)
		os.Exit(2)
	}

	// Rebuild the fiber plant with lengths in km (weights are 100 km
	// units in the wan package).
	fibers := graph.New()
	for i := 0; i < net.G.NumNodes(); i++ {
		fibers.AddNode(net.G.NodeName(graph.NodeID(i)))
	}
	for _, e := range net.G.Edges() {
		fibers.AddEdge(graph.Edge{From: e.From, To: e.To, Weight: e.Weight * 100})
	}

	optical, err := spectrum.NewNetwork(fibers, spectrum.Config{Channels: *channels})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-provision: %v\n", err)
		os.Exit(1)
	}

	nodeByName := map[string]graph.NodeID{}
	for i := 0; i < fibers.NumNodes(); i++ {
		nodeByName[fibers.NodeName(graph.NodeID(i))] = graph.NodeID(i)
	}

	// One lightpath per directed adjacency.
	blocked := 0
	for _, e := range net.G.Edges() {
		if _, err := optical.Provision(e.From, e.To); err != nil {
			fmt.Fprintf(os.Stderr, "  adjacency %s->%s blocked: %v\n",
				fibers.NodeName(e.From), fibers.NodeName(e.To), err)
			blocked++
		}
	}

	// Express requests.
	if *express != "" {
		for _, pair := range strings.Split(*express, ";") {
			parts := strings.Split(pair, ",")
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "rwc-provision: bad express pair %q\n", pair)
				os.Exit(2)
			}
			src, okS := nodeByName[strings.TrimSpace(parts[0])]
			dst, okD := nodeByName[strings.TrimSpace(parts[1])]
			if !okS || !okD {
				fmt.Fprintf(os.Stderr, "rwc-provision: unknown city in %q\n", pair)
				os.Exit(2)
			}
			if _, err := optical.Provision(src, dst); err != nil {
				fmt.Fprintf(os.Stderr, "  express %s blocked: %v\n", pair, err)
				blocked++
			}
		}
	}

	fmt.Printf("lightpath  ch  route%sSNR dB  deployed  feasible  headroom\n", strings.Repeat(" ", 36))
	for _, lp := range optical.Lightpaths() {
		route := ""
		for i, n := range lp.Route.Nodes {
			if i > 0 {
				route += "-"
			}
			route += fibers.NodeName(n)
		}
		if len(route) > 38 {
			route = route[:35] + "..."
		}
		fmt.Printf("%9d  %02d  %-40s %5.1f  %7.0fG %8.0fG %8.0fG\n",
			lp.ID, lp.Channel, route, lp.SNRdB,
			float64(lp.Capacity), float64(lp.Feasible), float64(lp.Headroom()))
	}

	top, _, err := optical.ToTopology(50)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-provision: %v\n", err)
		os.Exit(1)
	}
	var headroom float64
	for _, up := range top.Upgrades {
		headroom += up.ExtraCapacity
	}
	fmt.Printf("\nlightpaths: %d (blocked: %d)\n", len(optical.Lightpaths()), blocked)
	fmt.Printf("spectrum utilization: %.1f%%, fragmentation index: %.3f\n",
		100*optical.Utilization(), optical.FragmentationIndex())
	fmt.Printf("exported TE input: %d IP links, %d upgradable, %.0f Gbps total headroom\n",
		top.G.NumEdges(), len(top.Upgrades), headroom)
}
