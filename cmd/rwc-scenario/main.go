// Command rwc-scenario replays a JSON failure scenario through the
// dynamic-capacity control loop and prints the round-by-round report,
// comparing dynamic operation against today's binary up/down rule on
// the identical event timeline.
//
// Usage:
//
//	rwc-scenario -file scenario.json [-print-sample]
//
// See internal/scenario's LoadJSON doc comment for the file format.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/controller"
	"repro/internal/scenario"
)

const sample = `{
  "nodes": ["SEA", "DEN", "NYC"],
  "links": [
    {"from": "SEA", "to": "DEN", "weight": 1, "bidir": true},
    {"from": "DEN", "to": "NYC", "weight": 1, "bidir": true}
  ],
  "rounds": 6,
  "baseline_snr_db": 16,
  "demands": [{"from": "SEA", "to": "NYC", "gbps": 120}],
  "events": [
    {"round": 2, "from": "SEA", "to": "DEN", "snr_db": 4.2},
    {"round": 4, "from": "SEA", "to": "DEN", "snr_db": 16}
  ]
}
`

func main() {
	file := flag.String("file", "", "JSON scenario file (required unless -print-sample)")
	printSample := flag.Bool("print-sample", false, "print a sample scenario file and exit")
	flag.Parse()

	if *printSample {
		fmt.Print(sample)
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "rwc-scenario: -file is required (see -print-sample)")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-scenario: %v\n", err)
		os.Exit(1)
	}
	g, script, err := scenario.LoadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-scenario: %v\n", err)
		os.Exit(1)
	}

	dynamic, binary, err := scenario.CompareDynamicBinary(g, 100, controller.Config{}, script)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-scenario: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("scenario: %d nodes, %d links, %d rounds, %d events\n\n",
		g.NumNodes(), g.NumEdges(), script.Rounds, len(script.Events))
	fmt.Println("round  offered  dynamic shipped  binary shipped  dynamic orders")
	for i := range dynamic.Rounds {
		d := dynamic.Rounds[i]
		b := binary.Rounds[i]
		fmt.Printf("%5d  %7.0f  %15.0f  %14.0f  %d\n",
			d.Round, d.Offered, d.Shipped, b.Shipped, len(d.Orders))
		for _, o := range d.Orders {
			e := g.Edge(o.Edge)
			fmt.Printf("       %s %s->%s: %.0fG -> %.0fG\n",
				o.Kind, g.NodeName(e.From), g.NodeName(e.To), float64(o.From), float64(o.To))
		}
	}
	fmt.Printf("\nmean satisfied: dynamic %.1f%%, binary %.1f%%\n",
		100*dynamic.MeanSatisfied, 100*binary.MeanSatisfied)
	fmt.Printf("dark link-rounds: dynamic %d, binary %d\n",
		dynamic.DarkLinkRounds, binary.DarkLinkRounds)
	fmt.Printf("modulation changes: dynamic %d, binary %d\n",
		dynamic.TotalChanges, binary.TotalChanges)
}
