// Command rwc-wansim runs the WAN throughput/availability simulation:
// a backbone topology under SNR evolution, operated statically or
// dynamically (via the paper's graph abstraction), with per-round
// metrics printed as CSV-like rows.
//
// Usage:
//
//	rwc-wansim [-topology abilene|us|random] [-rounds N] [-policy p]
//	           [-demand f] [-wavelengths N] [-seed N] [-hitless]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/wan"
)

func main() {
	topology := flag.String("topology", "abilene", "backbone: abilene, us, or random")
	rounds := flag.Int("rounds", 28, "TE recomputation rounds")
	interval := flag.Duration("interval", 6*time.Hour, "time between rounds")
	policy := flag.String("policy", "all", "policy: static100, staticmax, dynamic, or all")
	demand := flag.Float64("demand", 1.2, "offered load as a fraction of static-100G capacity")
	wavelengths := flag.Int("wavelengths", 2, "wavelengths per fiber")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	hitless := flag.Bool("hitless", false, "assume hitless (35 ms) capacity changes instead of 68 s")
	lengthAware := flag.Bool("lengthaware", false, "derive per-fiber SNR baselines from link length (QoT model)")
	flag.Parse()

	var net *wan.Network
	var err error
	switch *topology {
	case "abilene":
		net = wan.Abilene(*wavelengths)
	case "us":
		net = wan.USBackbone(*wavelengths)
	case "random":
		net, err = wan.RandomBackbone(20, 14, *wavelengths, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rwc-wansim: unknown topology %q\n", *topology)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
		os.Exit(1)
	}

	cfg := wan.SimConfig{
		Net:            net,
		Rounds:         *rounds,
		RoundInterval:  *interval,
		Seed:           *seed,
		DemandFraction: *demand,
		DemandSigma:    0.1,
	}
	if *hitless {
		cfg.ChangeDowntime = 35 * time.Millisecond
	}
	cfg.LengthAware = *lengthAware
	sim, err := wan.NewSimulation(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
		os.Exit(1)
	}

	policies := map[string]wan.Policy{
		"static100": wan.PolicyStatic100,
		"staticmax": wan.PolicyStaticMax,
		"dynamic":   wan.PolicyDynamic,
	}
	var run []wan.Policy
	if *policy == "all" {
		run = []wan.Policy{wan.PolicyStatic100, wan.PolicyStaticMax, wan.PolicyDynamic}
	} else {
		p, ok := policies[*policy]
		if !ok {
			fmt.Fprintf(os.Stderr, "rwc-wansim: unknown policy %q\n", *policy)
			os.Exit(2)
		}
		run = []wan.Policy{p}
	}

	fmt.Printf("# topology=%s nodes=%d fibers=%d wavelengths=%d rounds=%d demand=%.2fx seed=%d\n",
		*topology, net.G.NumNodes(), net.NumFibers, *wavelengths, *rounds, *demand, *seed)
	fmt.Println("policy,round,offered_gbps,shipped_gbps,satisfied,capacity_gbps,changes,dark_links,disrupted_gbps_sec")
	for _, p := range run {
		res, err := sim.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-wansim: %v: %v\n", p, err)
			os.Exit(1)
		}
		for _, m := range res.Rounds {
			fmt.Printf("%s,%d,%.1f,%.1f,%.4f,%.0f,%d,%d,%.1f\n",
				p, m.Round, m.OfferedGbps, m.ShippedGbps, m.SatisfiedFraction(),
				m.CapacityGbps, m.Changes, m.LinksDark, m.DisruptedGbpsSec)
		}
		dark := 0
		var disrupted float64
		for _, m := range res.Rounds {
			dark += m.LinksDark
			disrupted += m.DisruptedGbpsSec
		}
		fmt.Printf("# %s summary: mean_satisfied=%.4f total_shipped=%.0f changes=%d dark_link_rounds=%d disrupted_gbps_sec=%.0f\n",
			p, res.MeanSatisfied(), res.TotalShipped(), res.TotalChanges(), dark, disrupted)
	}
}
