// Command rwc-wansim runs the WAN throughput/availability simulation:
// a backbone topology under SNR evolution, operated statically or
// dynamically (via the paper's graph abstraction), with per-round
// metrics printed as CSV-like rows.
//
// Usage:
//
//	rwc-wansim [-topology abilene|us|random] [-rounds N] [-policy p]
//	           [-demand f] [-wavelengths N] [-seed N] [-hitless]
//	           [-workers N] [-metrics-out m.prom] [-trace-out t.jsonl]
//	           [-manifest-out run.json] [-pprof addr]
//
// The three -*-out flags enable the observability layer: -metrics-out
// writes the final metric registry in Prometheus text format,
// -trace-out the decision trace as JSONL (timestamps are simulation
// time, so same-seed runs are byte-identical), and -manifest-out a run
// manifest with the seed, options, per-round wall durations, and
// metric totals. -pprof serves net/http/pprof on the given address
// (e.g. "localhost:6060") for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/wan"
)

// parseTopology is the single validation path for -topology.
func parseTopology(name string, wavelengths int, seed uint64) (*wan.Network, error) {
	switch name {
	case "abilene":
		return wan.Abilene(wavelengths), nil
	case "us":
		return wan.USBackbone(wavelengths), nil
	case "random":
		return wan.RandomBackbone(20, 14, wavelengths, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q (abilene, us, random)", name)
	}
}

// parsePolicy is the single validation path for -policy.
func parsePolicy(name string) ([]wan.Policy, error) {
	switch name {
	case "all":
		return []wan.Policy{wan.PolicyStatic100, wan.PolicyStaticMax, wan.PolicyDynamic}, nil
	case "static100":
		return []wan.Policy{wan.PolicyStatic100}, nil
	case "staticmax":
		return []wan.Policy{wan.PolicyStaticMax}, nil
	case "dynamic":
		return []wan.Policy{wan.PolicyDynamic}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (static100, staticmax, dynamic, all)", name)
	}
}

// usageError reports a flag-validation failure consistently: one
// stderr line, exit 2 (matching flag package convention).
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
	os.Exit(2)
}

// fatal reports a runtime failure: one stderr line, exit 1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
	os.Exit(1)
}

// writeOutput writes one observability artifact to path.
func writeOutput(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func main() {
	topology := flag.String("topology", "abilene", "backbone: abilene, us, or random")
	rounds := flag.Int("rounds", 28, "TE recomputation rounds")
	interval := flag.Duration("interval", 6*time.Hour, "time between rounds")
	policy := flag.String("policy", "all", "policy: static100, staticmax, dynamic, or all")
	demand := flag.Float64("demand", 1.2, "offered load as a fraction of static-100G capacity")
	wavelengths := flag.Int("wavelengths", 2, "wavelengths per fiber")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	hitless := flag.Bool("hitless", false, "assume hitless (35 ms) capacity changes instead of 68 s")
	workers := flag.Int("workers", 0, "fan-out width for SNR pre-generation and policy runs (0 = GOMAXPROCS); results are identical for every value")
	lengthAware := flag.Bool("lengthaware", false, "derive per-fiber SNR baselines from link length (QoT model)")
	metricsOut := flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "write the decision trace as JSONL to this file")
	manifestOut := flag.String("manifest-out", "", "write the run manifest as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	// Validate every enumerated flag through one path before doing any
	// work, so bad values always produce the same stderr shape + exit 2.
	run, err := parsePolicy(*policy)
	if err != nil {
		usageError(err)
	}
	net, err := parseTopology(*topology, *wavelengths, *seed)
	if err != nil {
		usageError(err)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rwc-wansim: pprof: %v\n", err)
			}
		}()
	}

	// The observability bundle: simulation-clocked metrics + trace, and
	// a wall clock injected here (cmd/ is outside the nowalltime rule)
	// for manifest phase durations only.
	var o *obs.Obs
	if *metricsOut != "" || *traceOut != "" || *manifestOut != "" {
		o = obs.New("rwc-wansim")
		start := time.Now()
		o.Wall = obs.ClockFunc(func() time.Duration { return time.Since(start) })
		o.Manifest.SetSeed(*seed)
		flag.VisitAll(func(fl *flag.Flag) {
			o.Manifest.SetOption(fl.Name, fl.Value.String())
		})
	}

	cfg := wan.SimConfig{
		Net:            net,
		Rounds:         *rounds,
		RoundInterval:  *interval,
		Seed:           *seed,
		DemandFraction: *demand,
		DemandSigma:    0.1,
		Obs:            o,
		Workers:        *workers,
	}
	if *hitless {
		cfg.ChangeDowntime = 35 * time.Millisecond
	}
	cfg.LengthAware = *lengthAware
	sim, err := wan.NewSimulation(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# topology=%s nodes=%d fibers=%d wavelengths=%d rounds=%d demand=%.2fx seed=%d\n",
		*topology, net.G.NumNodes(), net.NumFibers, *wavelengths, *rounds, *demand, *seed)
	fmt.Println("policy,round,offered_gbps,shipped_gbps,satisfied,capacity_gbps,changes,dark_links,disrupted_gbps_sec")
	// Policies run concurrently (-workers) against the same conditions;
	// per-policy obs children are merged back in policy order inside
	// RunPolicies, so every output below is byte-identical to a serial
	// run.
	results, err := sim.RunPolicies(run)
	if err != nil {
		fatal(err)
	}
	for i, p := range run {
		res := results[i]
		for _, m := range res.Rounds {
			fmt.Printf("%s,%d,%.1f,%.1f,%.4f,%.0f,%d,%d,%.1f\n",
				p, m.Round, m.OfferedGbps, m.ShippedGbps, m.SatisfiedFraction(),
				m.CapacityGbps, m.Changes, m.LinksDark, m.DisruptedGbpsSec)
		}
		dark := 0
		var disrupted float64
		for _, m := range res.Rounds {
			dark += m.LinksDark
			disrupted += m.DisruptedGbpsSec
		}
		fmt.Printf("# %s summary: mean_satisfied=%.4f total_shipped=%.0f changes=%d dark_link_rounds=%d disrupted_gbps_sec=%.0f\n",
			p, res.MeanSatisfied(), res.TotalShipped(), res.TotalChanges(), dark, disrupted)
	}

	if o != nil {
		o.FinishManifest()
		if *metricsOut != "" {
			writeOutput(*metricsOut, func(f *os.File) error { return o.Metrics.WritePrometheus(f) })
		}
		if *traceOut != "" {
			writeOutput(*traceOut, func(f *os.File) error { return o.Trace.WriteJSONL(f) })
		}
		if *manifestOut != "" {
			writeOutput(*manifestOut, func(f *os.File) error { return o.Manifest.WriteJSON(f) })
		}
	}
}
