// Command rwc-wansim runs the WAN throughput/availability simulation:
// a backbone topology under SNR evolution, operated statically or
// dynamically (via the paper's graph abstraction), with per-round
// metrics printed as CSV-like rows.
//
// Usage:
//
//	rwc-wansim [-topology abilene|us|random] [-rounds N] [-policy p]
//	           [-te alg] [-demand f] [-wavelengths N] [-seed N] [-hitless]
//	           [-workers N] [-metrics-out m.prom] [-trace-out t.jsonl]
//	           [-manifest-out run.json] [-flight-out run.flight]
//	           [-flight-links N] [-hist-out run.hist] [-hist-retain N]
//	           [-hist-budget N] [-perf-out perf.json] [-perf-profile-dir d]
//	           [-override-snr f,w,r,db] [-serve addr]
//	           [-pprof addr] [-log level] [-alerts] [-linger]
//
// The three -*-out flags enable the observability layer: -metrics-out
// writes the final metric registry in Prometheus text format,
// -trace-out the decision trace as JSONL (timestamps are simulation
// time, so same-seed runs are byte-identical), and -manifest-out a run
// manifest with the seed, options, per-round wall durations, and
// metric totals.
//
// -flight-out records the flight log: one frame per (policy, round)
// with per-link SNR, modulation tier, fake-edge offer, solver
// attribution, and the decision verdict, plus a trailer embedding the
// metrics/trace artifacts so `rwc-replay replay` can regenerate them
// byte-identically from the log alone. Recording is pure reads — a run
// with -flight-out produces byte-identical metrics/trace/manifest
// files to the same run without it. -flight-links caps how many links
// get live labeled series (the log itself always carries every link).
// -override-snr pins one (fiber,wavelength,round) SNR cell before the
// run — fault injection for `rwc-replay bisect` smoke tests.
//
// -hist-out enables the metrics-history store: every registry
// observation (and, with -flight-out, every per-link flight gauge) is
// kept as a sim-time-stamped series, served live on /queryz and
// /seriesz, evaluated by the windowed SLO burn-rate rules
// (capacity_below_slo), and written at exit as a canonical binary
// artifact (or JSONL when the path ends in .jsonl). Same-seed runs
// produce byte-identical history at any -workers, and a -hist-out run
// leaves all pre-existing artifacts byte-identical to a plain run.
// -hist-retain caps raw samples kept per series before downsampling;
// -hist-budget caps series admitted per fan-out shard, like
// -flight-links.
//
// -perf-out writes the wall-clock perf artifact (internal/obs/perf):
// per-phase latency histograms (one phase per policy, one sample per
// round), runtime memory/GC deltas, and a copy of the deterministic
// rwc_work_* counters. Wall capture is a segregated side channel — a
// run with -perf-out produces byte-identical stdout, metrics, trace,
// hist, and flight artifacts to the same run without it. The live
// snapshot is served at /perfz when -serve is up. -perf-profile-dir
// additionally writes run-scoped cpu.pprof/heap.pprof under the given
// directory. -te selects the TE algorithm (greedy, shortest-path,
// kpath, maxconcurrent) so work-counter comparisons across allocators
// are one flag apart.
//
// The live operations plane rides the same bundle: -serve exposes
// /metrics, /healthz, /readyz, /runz, the SSE /traces tail, and
// /debug/pprof on the given address (e.g. "localhost:6060") without
// perturbing the run — artifacts stay byte-identical with or without
// it. -pprof is the same server on a second address, kept for
// compatibility. -log level enables structured key=value progress
// logging to stderr (debug, info, warn, error). -alerts (on by
// default) evaluates the built-in SNR-dip / flap-rate / solver-work
// rules each round whenever observability is enabled. -linger keeps
// the process (and its server) alive after the run finishes until
// interrupted, so scrapers can collect the final state.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/olog"
	"repro/internal/obs/perf"
	"repro/internal/obs/serve"
	"repro/internal/wan"
)

// parseOverrideSNR parses -override-snr "fiber,wavelength,round,db".
func parseOverrideSNR(s string) (fiber, wavelength, round int, db float64, err error) {
	if _, err = fmt.Sscanf(s, "%d,%d,%d,%g", &fiber, &wavelength, &round, &db); err != nil {
		err = fmt.Errorf("bad -override-snr %q (want fiber,wavelength,round,db): %v", s, err)
	}
	return
}

// Topology, TE, and policy parsing share one validation path with
// rwc-wansimd and rwc-experiments: wan.ParseTopology, wan.ParseTE,
// and wan.ParsePolicies. Degenerate configurations fail here with
// exit 2 instead of deep inside a simulation round.

// usageError reports a flag-validation failure consistently: one
// stderr line, exit 2 (matching flag package convention).
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
	os.Exit(2)
}

// fatal reports a runtime failure: one stderr line, exit 1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansim: %v\n", err)
	os.Exit(1)
}

func main() {
	topology := flag.String("topology", "abilene", "backbone: abilene, us, random[:N], or continental:N (paper scale, e.g. continental:200)")
	rounds := flag.Int("rounds", 28, "TE recomputation rounds")
	interval := flag.Duration("interval", 6*time.Hour, "time between rounds")
	policy := flag.String("policy", "all", "policy: static100, staticmax, dynamic, or all")
	demand := flag.Float64("demand", 1.2, "offered load as a fraction of static-100G capacity")
	maxDemands := flag.Int("max-demands", 0, "keep only the N largest gravity demands (0 = all; continental topologies default to 4×nodes)")
	wavelengths := flag.Int("wavelengths", 2, "wavelengths per fiber")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	hitless := flag.Bool("hitless", false, "assume hitless (35 ms) capacity changes instead of 68 s")
	workers := flag.Int("workers", 0, "fan-out width for SNR pre-generation and policy runs (0 = GOMAXPROCS); results are identical for every value")
	lengthAware := flag.Bool("lengthaware", false, "derive per-fiber SNR baselines from link length (QoT model)")
	metricsOut := flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "write the decision trace as JSONL to this file")
	manifestOut := flag.String("manifest-out", "", "write the run manifest as JSON to this file")
	flightOut := flag.String("flight-out", "", "record the flight log (per-link decision audit) to this file")
	flightLinks := flag.Int("flight-links", flight.DefaultMaxLinks, "cardinality budget: links granted live labeled series (the log always carries every link)")
	histOut := flag.String("hist-out", "", "enable the metrics-history store and write it to this file at exit (binary; .jsonl suffix selects JSONL)")
	histRetain := flag.Int("hist-retain", hist.DefaultRetain, "raw samples retained per history series before downsampling")
	histBudget := flag.Int("hist-budget", hist.DefaultMaxSeries, "cardinality budget: history series admitted per fan-out shard (negative = unlimited)")
	perfOut := flag.String("perf-out", "", "write the wall-clock perf artifact (phase latencies, memory deltas, rwc_work_* copy) to this file; never perturbs the deterministic artifacts")
	perfProfileDir := flag.String("perf-profile-dir", "", "also write run-scoped cpu.pprof and heap.pprof under this directory (requires -perf-out)")
	teAlg := flag.String("te", "", "TE algorithm: greedy (default), shortest-path, kpath, maxconcurrent")
	overrideSNR := flag.String("override-snr", "", "pin one SNR cell as fiber,wavelength,round,db before the run (fault injection)")
	serveAddr := flag.String("serve", "", "serve the live operations plane (/metrics, /healthz, /readyz, /runz, /traces, /debug/pprof) on this address (e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "serve the same operations plane on a second address (kept for compatibility)")
	logLevel := flag.String("log", "", "structured stderr logging level: debug, info, warn, error (empty = off)")
	alertsOn := flag.Bool("alerts", true, "evaluate the built-in alert rules each round (requires observability to be enabled)")
	linger := flag.Bool("linger", false, "keep serving after the run finishes, until SIGINT/SIGTERM")
	flag.Parse()

	// Validate every enumerated flag through one path before doing any
	// work, so bad values always produce the same stderr shape + exit 2.
	run, err := wan.ParsePolicies(*policy)
	if err != nil {
		usageError(err)
	}
	net, err := wan.ParseTopology(*topology, *wavelengths, *seed)
	if err != nil {
		usageError(err)
	}
	if *maxDemands < 0 {
		usageError(fmt.Errorf("negative -max-demands %d", *maxDemands))
	}
	// Continental gravity matrices have O(nodes²) demand pairs; cap at
	// the heavy hitters by default so paper-scale runs stay tractable.
	// An explicit -max-demands always wins.
	if *maxDemands == 0 && strings.HasPrefix(*topology, "continental") {
		*maxDemands = 4 * net.G.NumNodes()
	}
	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		usageError(err)
	}
	alg, err := wan.ParseTE(*teAlg)
	if err != nil {
		usageError(err)
	}
	if *perfProfileDir != "" && *perfOut == "" {
		usageError(fmt.Errorf("-perf-profile-dir requires -perf-out"))
	}

	// The observability bundle: simulation-clocked metrics + trace, and
	// a wall clock injected here (cmd/ is outside the nowalltime rule)
	// for manifest phase durations only. Serving and logging also need
	// the bundle, so they enable it too.
	var o *obs.Obs
	if *metricsOut != "" || *traceOut != "" || *manifestOut != "" || *flightOut != "" ||
		*histOut != "" || *perfOut != "" || *serveAddr != "" || *pprofAddr != "" || *logLevel != "" {
		o = obs.New("rwc-wansim")
		o.Wall = daemon.WallClock(time.Now())
		o.Manifest.SetSeed(*seed)
		flag.VisitAll(func(fl *flag.Flag) {
			o.Manifest.SetOption(fl.Name, fl.Value.String())
		})
		if *logLevel != "" {
			o.Log = olog.New(os.Stderr, level).WithClock(o.Clock)
		}
	}

	// The live operations plane: -serve and -pprof share one helper (and
	// one mux shape), replacing the old ad-hoc pprof-only listener.
	// Serving is read-only over snapshots, so artifacts stay
	// byte-identical with or without it.
	addrs := []string{}
	if *serveAddr != "" {
		addrs = append(addrs, *serveAddr)
	}
	if *pprofAddr != "" && *pprofAddr != *serveAddr {
		addrs = append(addrs, *pprofAddr)
	}
	// The flight recorder owns its registry and is never merged into the
	// app bundle, so recording cannot perturb the artifacts above.
	var recorder *flight.Recorder
	if *flightOut != "" {
		recorder = flight.New(flight.Options{MaxLinks: *flightLinks})
	}
	// The metrics-history store is attached before the registry records
	// anything, so every series gets a history handle at registration.
	// Registry captures go through the root shard; the flight recorder
	// (whose own MaxLinks budget governs admission) gets a child shard.
	var histStore *hist.Store
	if *histOut != "" {
		histStore = hist.New(hist.Options{
			Retain:    *histRetain,
			MaxSeries: *histBudget,
			Tool:      "rwc-wansim",
			Seed:      *seed,
		})
		o.Metrics.SetHistory(histStore.Root().Bind(o.Clock))
		recorder.SetHistory(histStore.Root().NewChild(), *interval)
	}

	// The perf recorder is the wall-clock side channel: it never touches
	// the registry/trace/hist/flight sinks, so the artifacts above stay
	// byte-identical with or without it.
	var perfRec *perf.Recorder
	if *perfOut != "" {
		perfRec = perf.New("rwc-wansim")
		if *perfProfileDir != "" {
			if err := perfRec.StartProfiles(*perfProfileDir); err != nil {
				fatal(err)
			}
		}
	}

	var servers []*serve.Server
	for _, addr := range addrs {
		srv, err := serve.Start(addr, serve.Options{Obs: o, Tool: "rwc-wansim", Seed: *seed, Flight: recorder, Hist: histStore, Perf: perfRec})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rwc-wansim: serving operations plane on http://%s\n", srv.Addr())
		servers = append(servers, srv)
	}

	cfg := wan.SimConfig{
		Net:            net,
		Rounds:         *rounds,
		RoundInterval:  *interval,
		Seed:           *seed,
		DemandFraction: *demand,
		DemandSigma:    0.1,
		MaxDemands:     *maxDemands,
		Obs:            o,
		Workers:        *workers,
		Perf:           perfRec,
	}
	if alg != nil {
		cfg.TE = alg
	}
	if *hitless {
		cfg.ChangeDowntime = 35 * time.Millisecond
	}
	cfg.LengthAware = *lengthAware
	if *alertsOn && o != nil {
		cfg.Alerts = alert.DefaultWANRules()
		// The windowed SLO burn-rate rules read the history store, so
		// they ride along only when -hist-out enables one.
		if histStore != nil {
			cfg.Alerts = append(cfg.Alerts, alert.DefaultSLORules()...)
		}
	}
	cfg.Flight = recorder
	sim, err := wan.NewSimulation(cfg)
	if err != nil {
		fatal(err)
	}
	if *overrideSNR != "" {
		f, w, r, db, err := parseOverrideSNR(*overrideSNR)
		if err != nil {
			usageError(err)
		}
		if err := sim.OverrideSNR(f, w, r, db); err != nil {
			usageError(err)
		}
	}
	for _, srv := range servers {
		srv.SetReady(true)
	}

	daemon.PrintRunHeader(os.Stdout, daemon.Params{
		Topology: *topology, Wavelengths: *wavelengths, Rounds: *rounds,
		Demand: *demand, Seed: *seed,
	}, net)
	// Policies run concurrently (-workers) against the same conditions;
	// per-policy obs children are merged back in policy order inside
	// RunPolicies, so every output below is byte-identical to a serial
	// run.
	results, err := sim.RunPolicies(run)
	if err != nil {
		fatal(err)
	}
	daemon.PrintResults(os.Stdout, run, results)

	// Artifact flush and -linger ride the shared daemon lifecycle:
	// rwc-wansim is the zero-round-tail special case of service mode,
	// so the flush order and the drain-at-exit semantics are the same
	// implementation rwc-wansimd shuts down with.
	arts := daemon.Artifacts{
		MetricsOut:  *metricsOut,
		TraceOut:    *traceOut,
		ManifestOut: *manifestOut,
		HistOut:     *histOut,
		FlightOut:   *flightOut,
		PerfOut:     *perfOut,
		FlightMeta:  flight.Meta{Tool: "rwc-wansim", Seed: int64(*seed), Interval: *interval},
	}
	if err := arts.Flush(o, histStore, recorder, perfRec); err != nil {
		fatal(err)
	}

	// -linger keeps the operations plane up after the run so scrapers
	// and the CI smoke can read the final state (artifacts above are
	// already on disk), then drains the servers on the way out so SSE
	// sessions end with shutdown-cause accounting.
	if *linger && len(servers) > 0 {
		fmt.Fprintf(os.Stderr, "rwc-wansim: run complete; lingering until SIGINT/SIGTERM\n")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		daemon.Tail(ch, servers, 0, nil)
	}
}
