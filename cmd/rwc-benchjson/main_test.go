package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkSolve-8   \t 1234  812.5 ns/op  96 B/op  3 allocs/op  0.970 satisfied")
	if !ok {
		t.Fatal("benchmark line did not parse")
	}
	if name != "BenchmarkSolve" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.Iterations != 1234 || r.NsPerOp != 812.5 || r.BytesPerOp != 96 || r.AllocsOp != 3 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["satisfied"] != 0.970 {
		t.Fatalf("custom metric = %v", r.Metrics)
	}
	for _, bad := range []string{"goos: linux", "PASS", "ok  repro 1.2s", "BenchmarkX only"} {
		if _, _, ok := parseLine(bad); ok {
			t.Fatalf("non-benchmark line parsed: %q", bad)
		}
	}
}

func readHistory(t *testing.T, path string) []historyRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []historyRecord
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e historyRecord
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad history line %q: %v", line, err)
		}
		entries = append(entries, e)
	}
	return entries
}

func TestMergeHistoryCreatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := mergeHistory(path, historyRecord{SHA: "aaa", Date: "2026-08-01",
		Benchmarks: map[string]result{"BenchmarkX": {Iterations: 1, NsPerOp: 10}}}); err != nil {
		t.Fatal(err)
	}
	if err := mergeHistory(path, historyRecord{SHA: "bbb", Date: "2026-08-02",
		Benchmarks: map[string]result{"BenchmarkX": {Iterations: 1, NsPerOp: 11}}}); err != nil {
		t.Fatal(err)
	}
	entries := readHistory(t, path)
	if len(entries) != 2 || entries[0].SHA != "aaa" || entries[1].SHA != "bbb" {
		t.Fatalf("entries = %+v, want aaa then bbb", entries)
	}
}

func TestMergeHistoryReplacesSameSHA(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	seed := []historyRecord{
		{SHA: "aaa", Date: "2026-08-01", Benchmarks: map[string]result{
			"BenchmarkX": {Iterations: 1, NsPerOp: 10},
			"BenchmarkY": {Iterations: 1, NsPerOp: 20},
		}},
		{SHA: "bbb", Date: "2026-08-02", Benchmarks: map[string]result{
			"BenchmarkX": {Iterations: 1, NsPerOp: 11},
		}},
	}
	for _, e := range seed {
		if err := mergeHistory(path, e); err != nil {
			t.Fatal(err)
		}
	}
	// Re-running the suite at aaa: BenchmarkX replaced, BenchmarkZ
	// added, BenchmarkY (not in this run) kept, order preserved, no
	// duplicate line.
	if err := mergeHistory(path, historyRecord{SHA: "aaa", Date: "2026-08-03",
		Benchmarks: map[string]result{
			"BenchmarkX": {Iterations: 2, NsPerOp: 12},
			"BenchmarkZ": {Iterations: 1, NsPerOp: 30},
		}}); err != nil {
		t.Fatal(err)
	}
	entries := readHistory(t, path)
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want merge not append: %+v", len(entries), entries)
	}
	a := entries[0]
	if a.SHA != "aaa" || entries[1].SHA != "bbb" {
		t.Fatalf("order changed: %+v", entries)
	}
	if a.Date != "2026-08-03" {
		t.Fatalf("date = %q, want the re-run's date", a.Date)
	}
	if a.Benchmarks["BenchmarkX"].NsPerOp != 12 {
		t.Fatalf("BenchmarkX not replaced: %+v", a.Benchmarks["BenchmarkX"])
	}
	if a.Benchmarks["BenchmarkY"].NsPerOp != 20 {
		t.Fatalf("BenchmarkY lost: %+v", a.Benchmarks)
	}
	if a.Benchmarks["BenchmarkZ"].NsPerOp != 30 {
		t.Fatalf("BenchmarkZ not added: %+v", a.Benchmarks)
	}
}

func TestMergeHistoryRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := os.WriteFile(path, []byte("{\"sha\":\"aaa\",\"benchmarks\":{}}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := mergeHistory(path, historyRecord{SHA: "bbb", Benchmarks: map[string]result{}})
	if err == nil {
		t.Fatal("corrupt history must fail loudly, not be rewritten")
	}
	// The atomic rewrite never touched the original.
	data, rerr := os.ReadFile(path)
	if rerr != nil || !strings.Contains(string(data), "not json") {
		t.Fatalf("original file was modified: %q (%v)", data, rerr)
	}
}
