// Command rwc-benchjson converts `go test -bench` output on stdin into
// a JSON document on stdout: benchmark name → ns/op, allocs/op,
// B/op, and every custom b.ReportMetric value. The Makefile's
// bench-json target pipes the quick benchmark suite through it to
// regenerate BENCH_quick.json, giving CI and reviewers a diffable
// record of both performance and the headline reproduction numbers
// the benchmarks report as metrics.
//
// With -jsonl the document is instead emitted as a single compact JSON
// line {"sha":...,"date":...,"benchmarks":{...}} meant for a growing
// record (BENCH_history.jsonl). -sha and -date label the line; the
// Makefile derives both from git so the line is reproducible — no wall
// clock is read here.
//
// -merge FILE (implies -jsonl) merges the record into FILE in place
// instead of printing it: an existing entry with the same sha has the
// new benchmarks folded in (same-name benchmarks replaced, others
// kept), so re-running the bench target at one commit updates that
// commit's entry instead of appending a duplicate line — which would
// make rwc-perfdiff's SHA selection ambiguous and grow the file
// without bound. New SHAs append at the end; existing entry order is
// preserved. The rewrite goes through a temp file + rename, so a
// crashed run never truncates the history.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | rwc-benchjson > BENCH.json
//	go test -bench=History -benchmem ./internal/obs/... |
//	    rwc-benchjson -sha abc1234 -date 2026-08-08 -merge BENCH_history.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// historyRecord is one BENCH_history.jsonl line.
type historyRecord struct {
	SHA        string            `json:"sha,omitempty"`
	Date       string            `json:"date,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

// mergeHistory folds rec into the JSONL history at path: same-SHA
// entries have their benchmarks replaced by name (other benchmarks
// kept), new SHAs append, entry order is preserved. The file is
// rewritten atomically via a temp file in the same directory.
func mergeHistory(path string, rec historyRecord) error {
	var entries []historyRecord
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e historyRecord
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		entries = append(entries, e)
	}
	merged := false
	for i := range entries {
		if entries[i].SHA == rec.SHA {
			if entries[i].Benchmarks == nil {
				entries[i].Benchmarks = make(map[string]result)
			}
			for name, r := range rec.Benchmarks {
				entries[i].Benchmarks[name] = r
			}
			if rec.Date != "" {
				entries[i].Date = rec.Date
			}
			merged = true
			break
		}
	}
	if !merged {
		entries = append(entries, rec)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := fmt.Fprintf(tmp, "%s\n", line); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseLine parses one `BenchmarkName-P  N  v unit  v unit ...` line.
// Returns the benchmark name (CPU suffix stripped) and ok=false for
// non-benchmark lines.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix (Benchmark...-8).
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return name, r, true
}

func main() {
	jsonl := flag.Bool("jsonl", false, "emit one compact JSON line (for appending to a JSONL record) instead of an indented document")
	sha := flag.String("sha", "", "git commit SHA recorded on the -jsonl line")
	date := flag.String("date", "", "commit date recorded on the -jsonl line (derive from git, not the wall clock)")
	merge := flag.String("merge", "", "merge the record into this JSONL history in place (dedupe by sha, replace same-name benchmarks) instead of printing; implies -jsonl")
	flag.Parse()

	results := make(map[string]result)
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := results[name]; !seen {
			order = append(order, name)
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "rwc-benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "rwc-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	sort.Strings(order)
	if *merge != "" {
		if err := mergeHistory(*merge, historyRecord{SHA: *sha, Date: *date, Benchmarks: results}); err != nil {
			fmt.Fprintf(os.Stderr, "rwc-benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonl {
		// One compact line per invocation; map keys marshal in sorted
		// order, so the line is stable for a given suite.
		line, err := json.Marshal(historyRecord{*sha, *date, results})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(line))
		return
	}
	// Ordered output: marshal field by field so the document is stable
	// under re-runs of the same suite.
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintln(out, "{")
	for i, name := range order {
		blob, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-benchjson: %v\n", err)
			os.Exit(1)
		}
		comma := ","
		if i == len(order)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", name, blob, comma)
	}
	fmt.Fprintln(out, "}")
	if err := out.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "rwc-benchjson: %v\n", err)
		os.Exit(1)
	}
}
