// Command rwc-top is a live terminal dashboard for a running
// simulation's operations plane (rwc-wansim / rwc-experiments with
// -serve, typically alongside -linger and -hist-out). It polls /runz
// for run state, /queryz for windowed history of the key WAN series,
// and renders sparkline summaries plus the current alert state and —
// when the run has -perf-out — a PERF panel from /perfz: per-phase
// wall-latency sparklines over the most recent rounds and the top
// deterministic rwc_work_* counters.
//
// Usage:
//
//	rwc-top [-addr host:port] [-interval 2s] [-window 48h]
//	        [-series a,b,c] [-width N] [-once]
//
// Each frame shows, per (series, label set): the latest value, a
// sparkline of the window's samples, and the window min/max — all in
// sim time, so a paused simulation renders a stable frame. The ALERTS
// section lists rules currently firing (the alerts_active history
// series); the run's /queryz answers from the same deterministic store
// that -hist-out archives, so what rwc-top shows is exactly what the
// artifact will contain.
//
// -once renders a single frame and exits (0 on success, 1 when the
// operations plane is unreachable) — the CI smoke mode. Without -once
// it redraws every -interval until interrupted. History endpoints
// require the serving run to have -hist-out; without it rwc-top still
// shows /runz state and notes that history is disabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// sparkRunes is the 8-level bar alphabet, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

type config struct {
	base     string // http://host:port
	window   time.Duration
	series   []string
	width    int
	interval time.Duration
}

type runzJSON struct {
	Tool         string `json:"tool"`
	Seed         uint64 `json:"seed"`
	Ready        bool   `json:"ready"`
	SimNowNs     int64  `json:"sim_now_ns"`
	MetricSeries int    `json:"metric_series"`
}

type sampleJSON struct {
	TNs int64   `json:"t_ns"`
	V   float64 `json:"v"`
}

type resultJSON struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels"`
	Samples []sampleJSON      `json:"samples"`
}

type queryzJSON struct {
	Results []resultJSON `json:"results"`
}

// perfzJSON is the slice of the /perfz report rwc-top renders:
// per-phase wall latencies (recent_ns is the ring of the newest
// samples, oldest first — exactly a sparkline's input) and the
// deterministic work-counter copy.
type perfzJSON struct {
	Phases []struct {
		Name     string  `json:"name"`
		Count    int64   `json:"count"`
		MinNs    int64   `json:"min_ns"`
		MaxNs    int64   `json:"max_ns"`
		RecentNs []int64 `json:"recent_ns"`
	} `json:"phases"`
	Work map[string]float64 `json:"work"`
}

// slizJSON is the slice of the /sliz snapshot rwc-top renders.
type slizJSON struct {
	Tool         string             `json:"tool"`
	Generation   uint64             `json:"generation"`
	UptimeNs     int64              `json:"uptime_ns"`
	Totals       map[string]float64 `json:"totals"`
	ActiveAlerts []struct {
		Rule string `json:"rule"`
	} `json:"active_alerts"`
}

// getJSON fetches one endpoint and decodes it. A 404 is reported as
// errDisabled so callers can degrade instead of failing.
var errDisabled = fmt.Errorf("endpoint disabled")

func getJSON(client *http.Client, u string, v any) error {
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errDisabled
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// queryRange fetches one series' raw samples over (now-window, now].
func queryRange(client *http.Client, cfg config, selector string, nowNs int64) ([]resultJSON, error) {
	from := nowNs - cfg.window.Nanoseconds()
	if from < 0 {
		from = 0
	}
	q := url.Values{}
	q.Set("q", selector)
	q.Set("from_ns", fmt.Sprint(from))
	q.Set("to_ns", "-1")
	var out queryzJSON
	if err := getJSON(client, cfg.base+"/queryz?"+q.Encode(), &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// sparkline renders vals into width buckets, scaling min..max onto the
// 8-level bar alphabet. Flat series render mid-level bars.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		// Mean of this bucket's slice of the series.
		start, end := i*len(vals)/width, (i+1)*len(vals)/width
		sum := 0.0
		for _, v := range vals[start:end] {
			sum += v
		}
		mean := sum / float64(end-start)
		level := len(sparkRunes) / 2
		if hi > lo {
			level = int((mean - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// labelString renders a result's labels in canonical sorted order.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatSim(ns int64) string {
	return time.Duration(ns).String()
}

// renderFrame draws one full dashboard frame to w. It returns an error
// only when /runz itself is unreachable; history being disabled
// degrades to a note.
func renderFrame(w io.Writer, client *http.Client, cfg config) error {
	var runz runzJSON
	if err := getJSON(client, cfg.base+"/runz", &runz); err != nil {
		return fmt.Errorf("runz: %w", err)
	}
	fmt.Fprintf(w, "rwc-top — %s seed=%d sim=%s ready=%v series=%d (window %s)\n\n",
		runz.Tool, runz.Seed, formatSim(runz.SimNowNs), runz.Ready, runz.MetricSeries, cfg.window)

	histOK := true
	for _, sel := range cfg.series {
		results, err := queryRange(client, cfg, sel, runz.SimNowNs)
		if err == errDisabled {
			histOK = false
			break
		}
		if err != nil {
			return fmt.Errorf("queryz %s: %w", sel, err)
		}
		if len(results) == 0 {
			fmt.Fprintf(w, "  %-58s (no samples in window)\n", sel)
			continue
		}
		for _, r := range results {
			vals := make([]float64, len(r.Samples))
			for i, s := range r.Samples {
				vals[i] = s.V
			}
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			last := vals[len(vals)-1]
			fmt.Fprintf(w, "  %-58s %10.3f  %s  [%.3f … %.3f]\n",
				r.Name+labelString(r.Labels), last, sparkline(vals, cfg.width), lo, hi)
		}
	}
	if !histOK {
		fmt.Fprintf(w, "  history disabled for this run — start it with -hist-out to enable /queryz\n")
		fmt.Fprintf(w, "\nALERTS\n  unavailable without history\n")
		// Service and perf are independent of history: a daemon or
		// -perf-out run without -hist-out still gets those panels.
		renderService(w, client, cfg)
		renderPerf(w, client, cfg)
		return nil
	}

	fmt.Fprintf(w, "\nALERTS\n")
	active, err := queryRange(client, cfg, "alerts_active", runz.SimNowNs)
	if err != nil && err != errDisabled {
		return fmt.Errorf("queryz alerts_active: %w", err)
	}
	firing := 0
	for _, r := range active {
		if len(r.Samples) == 0 {
			continue
		}
		if last := r.Samples[len(r.Samples)-1]; last.V > 0 {
			firing++
			fmt.Fprintf(w, "  FIRING %s (since sample at %s)\n",
				labelString(r.Labels), formatSim(last.TNs))
		}
	}
	if firing == 0 {
		fmt.Fprintf(w, "  none firing\n")
	}

	renderService(w, client, cfg)
	renderPerf(w, client, cfg)
	return nil
}

// renderService draws the SERVICE panel from /sliz (and a
// decisions/sec sparkline from /queryz over the SLI history). Outside
// daemon mode /sliz answers 404 and the panel degrades to a note;
// any other failure degrades too — the panel is advisory and must
// never take down a frame that /runz answered.
func renderService(w io.Writer, client *http.Client, cfg config) {
	var sz slizJSON
	if err := getJSON(client, cfg.base+"/sliz", &sz); err != nil {
		if err == errDisabled {
			fmt.Fprintf(w, "\nSERVICE\n  service-level indicators disabled — run under rwc-wansimd to enable /sliz\n")
		} else {
			fmt.Fprintf(w, "\nSERVICE\n  unavailable: %v\n", err)
		}
		return
	}
	fmt.Fprintf(w, "\nSERVICE (%s — live only, never in the deterministic artifacts)\n", sz.Tool)
	fmt.Fprintf(w, "  uptime %s  config generation %d\n",
		time.Duration(sz.UptimeNs).Round(time.Millisecond), sz.Generation)

	// Decisions/sec sparkline over the SLI history store; the series
	// is uptime-clocked, so the window query uses uptime as "now".
	if results, err := queryRange(client, cfg, "rwc_sli_decisions_per_second", sz.UptimeNs); err == nil {
		for _, r := range results {
			if len(r.Samples) == 0 {
				continue
			}
			vals := make([]float64, len(r.Samples))
			for i, s := range r.Samples {
				vals[i] = s.V
			}
			fmt.Fprintf(w, "  %-58s %10.3f  %s\n", r.Name, vals[len(vals)-1], sparkline(vals, cfg.width))
		}
	}

	// Headline gauges/counters straight from the snapshot totals.
	show := func(label string, keys ...string) {
		var sum float64
		found := false
		for k, v := range sz.Totals {
			for _, key := range keys {
				if k == key || strings.HasPrefix(k, key+"{") {
					sum += v
					found = true
				}
			}
		}
		if found {
			fmt.Fprintf(w, "  %-58s %12.3f\n", label, sum)
		}
	}
	show("scrape p99 proxy: last scrape latency (s)", "rwc_sli_scrape_latency_last_seconds")
	show("sse subscribers", "rwc_sli_sse_subscribers")
	show("sse dropped (all causes)", "rwc_sli_sse_dropped_total")
	show("config reloads (all results)", "rwc_sli_config_reloads_total")
	show("rounds completed", "rwc_sli_rounds_total")
	show("decisions total", "rwc_sli_decisions_total")

	if len(sz.ActiveAlerts) == 0 {
		fmt.Fprintf(w, "  service alerts: none firing\n")
	} else {
		for _, a := range sz.ActiveAlerts {
			fmt.Fprintf(w, "  service alert FIRING: %s\n", a.Rule)
		}
	}
}

// topWorkCounters caps how many work counters the PERF panel lists.
const topWorkCounters = 8

// renderPerf draws the PERF panel from /perfz. Perf capture being
// disabled (404) or the fetch failing degrades to a note: the panel is
// advisory and must never take down a frame that /runz answered.
func renderPerf(w io.Writer, client *http.Client, cfg config) {
	var pz perfzJSON
	if err := getJSON(client, cfg.base+"/perfz", &pz); err != nil {
		if err == errDisabled {
			fmt.Fprintf(w, "\nPERF\n  perf capture disabled for this run — enable with -perf-out\n")
		} else {
			fmt.Fprintf(w, "\nPERF\n  unavailable: %v\n", err)
		}
		return
	}
	fmt.Fprintf(w, "\nPERF (wall clock — side channel, not in the deterministic artifacts)\n")
	for _, p := range pz.Phases {
		vals := make([]float64, len(p.RecentNs))
		for i, ns := range p.RecentNs {
			vals[i] = float64(ns)
		}
		last := time.Duration(0)
		if n := len(p.RecentNs); n > 0 {
			last = time.Duration(p.RecentNs[n-1])
		}
		fmt.Fprintf(w, "  %-42s n=%-5d %10s  %s  [%s … %s]\n",
			p.Name, p.Count, last, sparkline(vals, cfg.width),
			time.Duration(p.MinNs), time.Duration(p.MaxNs))
	}
	if len(pz.Phases) == 0 {
		fmt.Fprintf(w, "  no phases recorded yet\n")
	}
	// Top deterministic work counters, largest first: the solver-effort
	// view that stays byte-identical across worker counts.
	type wc struct {
		name string
		v    float64
	}
	work := make([]wc, 0, len(pz.Work))
	for name, v := range pz.Work {
		work = append(work, wc{name, v})
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].v != work[j].v { //nolint:nofloateq // comparator tie-break: tolerance would break strict weak ordering
			return work[i].v > work[j].v
		}
		return work[i].name < work[j].name
	})
	if len(work) > topWorkCounters {
		work = work[:topWorkCounters]
	}
	for _, c := range work {
		fmt.Fprintf(w, "  %-58s %12.0f\n", c.name, c.v)
	}
}

func main() {
	addr := flag.String("addr", "localhost:6060", "operations-plane address of the running simulation (-serve)")
	interval := flag.Duration("interval", 2*time.Second, "poll/redraw interval")
	window := flag.Duration("window", 48*time.Hour, "sim-time window each sparkline covers")
	width := flag.Int("width", 32, "sparkline width in cells")
	once := flag.Bool("once", false, "render a single frame and exit (CI snapshot mode)")
	seriesFlag := flag.String("series", "wan_snr_min_db,wan_flap_rate,wan_capacity_gbps,wan_shipped_gbps",
		"comma-separated series selectors to chart (each may carry {label=\"value\"} matchers)")
	flag.Parse()

	cfg := config{
		base:     "http://" + *addr,
		window:   *window,
		width:    *width,
		interval: *interval,
	}
	for _, s := range strings.Split(*seriesFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.series = append(cfg.series, s)
		}
	}
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		if err := renderFrame(os.Stdout, client, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rwc-top: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(cfg.interval)
	defer ticker.Stop()
	for {
		var frame strings.Builder
		err := renderFrame(&frame, client, cfg)
		// Clear screen + home cursor between frames; on error keep the
		// last good frame and show the error on one line instead.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("rwc-top: %v (retrying every %s)\n", err, cfg.interval)
		} else {
			fmt.Print(frame.String())
		}
		select {
		case <-sig:
			return
		case <-ticker.C:
		}
	}
}
