package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
	"repro/internal/obs/serve"
)

// topServer builds an operations plane over a history store carrying a
// seeded SNR dip at rounds 4-5 of 8 and a firing alert series; with
// withPerf it also attaches a perf recorder with one timed phase and a
// work counter, so the PERF panel has something to render.
func topServer(t *testing.T, withHist, withPerf bool) *httptest.Server {
	t.Helper()
	o := obs.New("top-test")
	var st *hist.Store
	if withHist {
		st = hist.New(hist.Options{Tool: "top-test", Seed: 7})
		o.Metrics.SetHistory(st.Root().Bind(o.Clock))
	}
	g := o.Gauge("wan_snr_min_db", "min SNR", obs.L("policy", "run"))
	a := o.Gauge("alerts_active", "firing", obs.L("alert", "capacity_below_slo"))
	for r := 0; r < 8; r++ {
		o.SetSimTime(time.Duration(r) * 6 * time.Hour)
		v, firing := 15.0, 0.0
		if r == 4 || r == 5 {
			v = 11.0
		}
		if r >= 4 { // fired at the dip and not yet resolved
			firing = 1.0
		}
		g.Set(v)
		a.Set(firing)
	}
	var rec *perf.Recorder
	if withPerf {
		rec = perf.New("top-test")
		for i := 1; i <= 4; i++ {
			rec.Observe("wan.round/dynamic", time.Duration(i)*time.Millisecond)
		}
		o.Counter("rwc_work_dijkstra_pops_total", "pops", obs.L("policy", "dynamic")).Add(12345)
	}
	s := serve.New(serve.Options{Obs: o, Tool: "top-test", Seed: 7, Hist: st, Perf: rec})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func topConfig(ts *httptest.Server) config {
	return config{
		base:   ts.URL,
		window: 48 * time.Hour,
		series: []string{`wan_snr_min_db{policy="run"}`},
		width:  16,
	}
}

func TestRenderFrameShowsSeriesAndAlerts(t *testing.T) {
	ts := topServer(t, true, false)
	var out strings.Builder
	if err := renderFrame(&out, ts.Client(), topConfig(ts)); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{
		"top-test seed=7",
		`wan_snr_min_db{policy="run"}`,
		"[11.000 … 15.000]",
		"ALERTS",
		`FIRING {alert="capacity_below_slo"}`,
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// The dip series last value is the round-7 recovery, not the dip.
	if !strings.Contains(frame, "15.000  ") {
		t.Fatalf("frame missing last value:\n%s", frame)
	}
	for _, r := range sparkRunes {
		if strings.ContainsRune(frame, r) {
			// Without a perf recorder the PERF panel degrades to a note.
			if !strings.Contains(frame, "perf capture disabled") {
				t.Fatalf("frame missing perf-disabled note:\n%s", frame)
			}
			return
		}
	}
	t.Fatalf("frame has no sparkline cells:\n%s", frame)
}

func TestRenderFramePerfPanel(t *testing.T) {
	ts := topServer(t, true, true)
	var out strings.Builder
	if err := renderFrame(&out, ts.Client(), topConfig(ts)); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{
		"PERF",
		"wan.round/dynamic",
		"n=4",
		"[1ms … 4ms]",
		"rwc_work_dijkstra_pops_total",
		"12345",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// The PERF latency line carries its own sparkline cells.
	perfSection := frame[strings.Index(frame, "PERF"):]
	for _, r := range sparkRunes {
		if strings.ContainsRune(perfSection, r) {
			return
		}
	}
	t.Fatalf("PERF panel has no sparkline cells:\n%s", frame)
}

func TestRenderFrameWithoutHistoryDegrades(t *testing.T) {
	ts := topServer(t, false, false)
	var out strings.Builder
	if err := renderFrame(&out, ts.Client(), topConfig(ts)); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	if !strings.Contains(frame, "history disabled") ||
		!strings.Contains(frame, "unavailable without history") {
		t.Fatalf("frame does not degrade gracefully:\n%s", frame)
	}
}

// TestRenderFramePerfPanelWithoutHistory: perf is independent of
// history — a -perf-out run without -hist-out must still render its
// PERF panel after the history-disabled degradation notes.
func TestRenderFramePerfPanelWithoutHistory(t *testing.T) {
	ts := topServer(t, false, true)
	var out strings.Builder
	if err := renderFrame(&out, ts.Client(), topConfig(ts)); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	if !strings.Contains(frame, "history disabled") {
		t.Fatalf("frame missing history degradation note:\n%s", frame)
	}
	if !strings.Contains(frame, "PERF") || !strings.Contains(frame, "wan.round/dynamic") {
		t.Fatalf("PERF panel missing from history-less frame:\n%s", frame)
	}
}

func TestRenderFrameUnreachable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // connection refused from here on
	var out strings.Builder
	cfg := topConfig(ts)
	if err := renderFrame(&out, &http.Client{Timeout: time.Second}, cfg); err == nil {
		t.Fatal("want error for unreachable operations plane")
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil, 8); s != "" {
		t.Fatalf("empty series → %q", s)
	}
	// A flat series renders mid-level bars.
	if s := sparkline([]float64{5, 5, 5}, 3); s != "▅▅▅" {
		t.Fatalf("flat series → %q", s)
	}
	// A ramp starts at the lowest level and ends at the highest.
	ramp := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if ramp != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp → %q", ramp)
	}
	// Width is clamped to the sample count.
	if s := sparkline([]float64{1, 2}, 10); len([]rune(s)) != 2 {
		t.Fatalf("clamped width → %q", s)
	}
}
