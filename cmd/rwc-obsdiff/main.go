// Command rwc-obsdiff compares two runs' observability artifacts:
// Prometheus metric expositions (.prom) or run manifests (.json). It
// reports new series, missing series, and value deltas beyond a
// tolerance, and exits 0 when the artifacts agree — the tool the CI
// live-serve smoke uses to prove a -serve run is byte-equivalent to a
// non-serving run, and the tool to reach for when asking "what changed
// between these two runs?".
//
// Usage:
//
//	rwc-obsdiff [-tol F] [-json] a.prom b.prom
//	rwc-obsdiff [-tol F] [-json] a.json b.json
//	rwc-obsdiff [-json] a.flight b.flight
//	rwc-obsdiff [-json] a.hist b.hist
//	rwc-obsdiff [-json] -check file...
//
// With -check, each file is parse-validated only (no comparison); any
// unparsable file is an error. Manifests compare seeds, metric totals,
// and alert summaries; wall-clock phase durations are excluded (two
// runs always differ there). A .json file whose kind is "rwc-perf" (a
// -perf-out artifact) is recognized by content: its deterministic
// rwc_work_* counter copy is diffed exactly, and every wall-clock
// field (phase latencies, memory deltas) is excluded wholesale — two
// runs never agree there, and the perf artifact segregates them so
// the comparable part stays comparable. Flight logs (.flight)
// delegate to the rwc-replay bisect engine: the first diverging
// (round, link, field)
// is reported, with the same 0/1/2 exit contract (-tol does not apply
// — flight divergence is exact by design). History archives (.hist)
// compare per-series sample streams and report each differing series
// with the sim time of its first diverging sample (-tol does not apply
// — history is exact by design).
//
// -json renders the same result as a single machine-readable JSON
// object on stdout (the exit contract is unchanged), for CI jobs that
// want structured rather than textual diffs.
//
// Exit status: 0 = artifacts agree (or all -check files parse),
// 1 = differences found, 2 = usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/perf"
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rwc-obsdiff: "+format+"\n", args...)
	os.Exit(code)
}

// loadTotals parses one artifact into the flat key→value shape both
// formats share. The format is chosen by extension: .prom is a
// Prometheus text exposition, .json a run manifest — unless its kind
// marks it as a perf artifact, which is sniffed by content because
// both are ".json". Perf artifacts contribute only their rwc_work_*
// counter copy: the wall-clock fields are excluded by design (all
// their JSON keys end in _ns, and no two runs agree on them), so
// diffing two perf artifacts asserts exactly the deterministic part.
func loadTotals(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := filepath.Ext(path); ext {
	case ".prom", ".txt", ".metrics":
		return obs.PromTotals(f)
	case ".json":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if perf.IsReport(data) {
			var rep perf.Report
			if err := json.Unmarshal(data, &rep); err != nil {
				return nil, fmt.Errorf("%s: %v", path, err)
			}
			if rep.Work == nil {
				return map[string]float64{}, nil
			}
			return rep.Work, nil
		}
		return obs.ManifestTotals(f)
	default:
		return nil, fmt.Errorf("%s: unknown artifact extension %q (want .prom, .json, or .flight)", path, ext)
	}
}

// loadFlight reads and hash-verifies one flight log.
func loadFlight(path string) (*flight.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := flight.ReadLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := log.VerifyHashes(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// emitJSON renders one machine-readable result object on stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf(2, "%v", err)
	}
}

// diffFlight compares two flight logs via the bisect engine and exits
// with the shared 0/1/2 contract.
func diffFlight(pathA, pathB string, jsonOut bool) {
	a, err := loadFlight(pathA)
	if err != nil {
		fatalf(2, "%v", err)
	}
	b, err := loadFlight(pathB)
	if err != nil {
		fatalf(2, "%v", err)
	}
	d := flight.Bisect(a, b)
	if jsonOut {
		emitJSON(struct {
			Kind      string `json:"kind"`
			A         string `json:"a"`
			B         string `json:"b"`
			Identical bool   `json:"identical"`
			Summary   string `json:"summary"`
			Run       string `json:"run,omitempty"`
			Policy    string `json:"policy,omitempty"`
			Round     int    `json:"round,omitempty"`
			Link      string `json:"link,omitempty"`
			Field     string `json:"field,omitempty"`
		}{"flight", pathA, pathB, !d.Found, d.String(), d.Run, d.Policy, d.Round, d.Link, d.Field})
	} else {
		fmt.Println(d)
	}
	if d.Found {
		os.Exit(1)
	}
}

// loadHist reads one history archive (binary .hist form).
func loadHist(path string) (*hist.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := hist.ReadArchive(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// diffHist compares two history archives series-by-series, reporting
// the sim time of the first diverging sample per series. History is
// exact by design, so -tol does not apply.
func diffHist(pathA, pathB string, jsonOut bool) {
	a, err := loadHist(pathA)
	if err != nil {
		fatalf(2, "%v", err)
	}
	b, err := loadHist(pathB)
	if err != nil {
		fatalf(2, "%v", err)
	}
	diffs := hist.Diff(a, b)
	if jsonOut {
		if diffs == nil {
			diffs = []hist.DiffEntry{}
		}
		emitJSON(struct {
			Kind        string           `json:"kind"`
			A           string           `json:"a"`
			B           string           `json:"b"`
			Identical   bool             `json:"identical"`
			Series      int              `json:"series"`
			Differences []hist.DiffEntry `json:"differences"`
		}{"hist", pathA, pathB, len(diffs) == 0, len(a.Series), diffs})
	} else if len(diffs) == 0 {
		fmt.Printf("identical: %d history series agree\n", len(a.Series))
	} else {
		for _, d := range diffs {
			fmt.Println(d)
		}
		fmt.Printf("%d differing series\n", len(diffs))
	}
	if len(diffs) > 0 {
		os.Exit(1)
	}
}

func main() {
	tol := flag.Float64("tol", 0, "absolute value tolerance below which samples compare equal")
	check := flag.Bool("check", false, "parse-validate each file instead of comparing two")
	jsonOut := flag.Bool("json", false, "render the result as a machine-readable JSON object on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rwc-obsdiff [-tol F] [-json] a.{prom,json,flight,hist} b.{prom,json,flight,hist}\n")
		fmt.Fprintf(os.Stderr, "       rwc-obsdiff [-json] -check file...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if *check {
		if len(args) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		type checked struct {
			Path   string `json:"path"`
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		}
		var results []checked
		for _, path := range args {
			var detail string
			switch filepath.Ext(path) {
			case ".flight":
				log, err := loadFlight(path)
				if err != nil {
					fatalf(2, "%v", err)
				}
				detail = fmt.Sprintf("%d frames, hashes verified", len(log.Frames))
			case ".hist":
				arch, err := loadHist(path)
				if err != nil {
					fatalf(2, "%v", err)
				}
				detail = fmt.Sprintf("%d history series", len(arch.Series))
			default:
				totals, err := loadTotals(path)
				if err != nil {
					fatalf(2, "%v", err)
				}
				detail = fmt.Sprintf("%d series", len(totals))
			}
			if *jsonOut {
				results = append(results, checked{path, true, detail})
			} else {
				fmt.Printf("%s: ok (%s)\n", path, detail)
			}
		}
		if *jsonOut {
			emitJSON(struct {
				Kind  string    `json:"kind"`
				Files []checked `json:"files"`
			}{"check", results})
		}
		return
	}

	if len(args) != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if extA, extB := filepath.Ext(args[0]), filepath.Ext(args[1]); extA != extB {
		fatalf(2, "cannot compare %s against %s (different artifact kinds)", args[0], args[1])
	}
	switch filepath.Ext(args[0]) {
	case ".flight":
		diffFlight(args[0], args[1], *jsonOut)
		return
	case ".hist":
		diffHist(args[0], args[1], *jsonOut)
		return
	}
	a, err := loadTotals(args[0])
	if err != nil {
		fatalf(2, "%v", err)
	}
	b, err := loadTotals(args[1])
	if err != nil {
		fatalf(2, "%v", err)
	}

	diffs := obs.DiffTotals(a, b, *tol)
	if *jsonOut {
		type entry struct {
			Key string   `json:"key"`
			InA bool     `json:"in_a"`
			InB bool     `json:"in_b"`
			A   *float64 `json:"a,omitempty"`
			B   *float64 `json:"b,omitempty"`
		}
		entries := []entry{}
		for _, d := range diffs {
			e := entry{Key: d.Key, InA: d.InA, InB: d.InB}
			if d.InA {
				v := d.A
				e.A = &v
			}
			if d.InB {
				v := d.B
				e.B = &v
			}
			entries = append(entries, e)
		}
		emitJSON(struct {
			Kind        string  `json:"kind"`
			A           string  `json:"a"`
			B           string  `json:"b"`
			Tol         float64 `json:"tol"`
			Identical   bool    `json:"identical"`
			Series      int     `json:"series"`
			Differences []entry `json:"differences"`
		}{"totals", args[0], args[1], *tol, len(diffs) == 0, len(a), entries})
		if len(diffs) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(diffs) == 0 {
		fmt.Printf("identical: %d series agree (tol %g)\n", len(a), *tol)
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	sides := func() (onlyA, onlyB, changed int) {
		for _, d := range diffs {
			switch {
			case d.InA && !d.InB:
				onlyA++
			case !d.InA && d.InB:
				onlyB++
			default:
				changed++
			}
		}
		return
	}
	onlyA, onlyB, changed := sides()
	fmt.Printf("%d difference(s): %d only in %s, %d only in %s, %d value delta(s)\n",
		len(diffs), onlyA, args[0], onlyB, args[1], changed)
	os.Exit(1)
}
