// Command rwc-obsdiff compares two runs' observability artifacts:
// Prometheus metric expositions (.prom) or run manifests (.json). It
// reports new series, missing series, and value deltas beyond a
// tolerance, and exits 0 when the artifacts agree — the tool the CI
// live-serve smoke uses to prove a -serve run is byte-equivalent to a
// non-serving run, and the tool to reach for when asking "what changed
// between these two runs?".
//
// Usage:
//
//	rwc-obsdiff [-tol F] a.prom b.prom
//	rwc-obsdiff [-tol F] a.json b.json
//	rwc-obsdiff a.flight b.flight
//	rwc-obsdiff -check file...
//
// With -check, each file is parse-validated only (no comparison); any
// unparsable file is an error. Manifests compare seeds, metric totals,
// and alert summaries; wall-clock phase durations are excluded (two
// runs always differ there). Flight logs (.flight) delegate to the
// rwc-replay bisect engine: the first diverging (round, link, field)
// is reported, with the same 0/1/2 exit contract (-tol does not apply
// — flight divergence is exact by design).
//
// Exit status: 0 = artifacts agree (or all -check files parse),
// 1 = differences found, 2 = usage or parse error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rwc-obsdiff: "+format+"\n", args...)
	os.Exit(code)
}

// loadTotals parses one artifact into the flat key→value shape both
// formats share. The format is chosen by extension: .prom is a
// Prometheus text exposition, .json a run manifest.
func loadTotals(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := filepath.Ext(path); ext {
	case ".prom", ".txt", ".metrics":
		return obs.PromTotals(f)
	case ".json":
		return obs.ManifestTotals(f)
	default:
		return nil, fmt.Errorf("%s: unknown artifact extension %q (want .prom, .json, or .flight)", path, ext)
	}
}

// loadFlight reads and hash-verifies one flight log.
func loadFlight(path string) (*flight.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := flight.ReadLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := log.VerifyHashes(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// diffFlight compares two flight logs via the bisect engine and exits
// with the shared 0/1/2 contract.
func diffFlight(pathA, pathB string) {
	a, err := loadFlight(pathA)
	if err != nil {
		fatalf(2, "%v", err)
	}
	b, err := loadFlight(pathB)
	if err != nil {
		fatalf(2, "%v", err)
	}
	d := flight.Bisect(a, b)
	fmt.Println(d)
	if d.Found {
		os.Exit(1)
	}
}

func main() {
	tol := flag.Float64("tol", 0, "absolute value tolerance below which samples compare equal")
	check := flag.Bool("check", false, "parse-validate each file instead of comparing two")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rwc-obsdiff [-tol F] a.{prom,json} b.{prom,json}\n")
		fmt.Fprintf(os.Stderr, "       rwc-obsdiff -check file...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	if *check {
		if len(args) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		for _, path := range args {
			if filepath.Ext(path) == ".flight" {
				log, err := loadFlight(path)
				if err != nil {
					fatalf(2, "%v", err)
				}
				fmt.Printf("%s: ok (%d frames, hashes verified)\n", path, len(log.Frames))
				continue
			}
			totals, err := loadTotals(path)
			if err != nil {
				fatalf(2, "%v", err)
			}
			fmt.Printf("%s: ok (%d series)\n", path, len(totals))
		}
		return
	}

	if len(args) != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if extA, extB := filepath.Ext(args[0]), filepath.Ext(args[1]); extA != extB {
		fatalf(2, "cannot compare %s against %s (different artifact kinds)", args[0], args[1])
	}
	if filepath.Ext(args[0]) == ".flight" {
		diffFlight(args[0], args[1])
		return
	}
	a, err := loadTotals(args[0])
	if err != nil {
		fatalf(2, "%v", err)
	}
	b, err := loadTotals(args[1])
	if err != nil {
		fatalf(2, "%v", err)
	}

	diffs := obs.DiffTotals(a, b, *tol)
	if len(diffs) == 0 {
		fmt.Printf("identical: %d series agree (tol %g)\n", len(a), *tol)
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	sides := func() (onlyA, onlyB, changed int) {
		for _, d := range diffs {
			switch {
			case d.InA && !d.InB:
				onlyA++
			case !d.InA && d.InB:
				onlyB++
			default:
				changed++
			}
		}
		return
	}
	onlyA, onlyB, changed := sides()
	fmt.Printf("%d difference(s): %d only in %s, %d only in %s, %d value delta(s)\n",
		len(diffs), onlyA, args[0], onlyB, args[1], changed)
	os.Exit(1)
}
