package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/perf"
)

// writePerfArtifact writes a -perf-out style artifact: timed phases
// (wall clock, differs run to run) plus a work-counter copy
// (deterministic, must compare exactly).
func writePerfArtifact(t *testing.T, dir, name string, phaseNs time.Duration, work map[string]float64) string {
	t.Helper()
	rec := perf.New("obsdiff-test")
	rec.Observe("wan.round/dynamic", phaseNs)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = rec.WriteJSON(f, work)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTotalsSniffsPerfArtifact(t *testing.T) {
	dir := t.TempDir()
	work := map[string]float64{
		`rwc_work_dijkstra_pops_total{policy="dynamic"}`:   6870,
		`rwc_work_arc_relaxations_total{policy="dynamic"}`: 18455,
	}
	path := writePerfArtifact(t, dir, "a.json", time.Millisecond, work)
	totals, err := loadTotals(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) != len(work) {
		t.Fatalf("totals = %v, want exactly the work counters", totals)
	}
	for k, v := range work {
		if totals[k] != v {
			t.Fatalf("totals[%s] = %v, want %v", k, totals[k], v)
		}
	}
	// Every wall-clock field is excluded: nothing with an _ns key (or
	// any non-work key) may leak into the comparable set.
	for k := range totals {
		if !strings.HasPrefix(k, perf.WorkPrefix) {
			t.Fatalf("non-work key %q leaked into totals", k)
		}
	}
}

func TestPerfArtifactsDiffOnWorkNotWall(t *testing.T) {
	dir := t.TempDir()
	work := map[string]float64{`rwc_work_dijkstra_pops_total{policy="dynamic"}`: 6870}
	// Wildly different wall latencies, identical work: artifacts agree.
	a, err := loadTotals(writePerfArtifact(t, dir, "a.json", time.Millisecond, work))
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadTotals(writePerfArtifact(t, dir, "b.json", time.Minute, work))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := obs.DiffTotals(a, b, 0); len(diffs) != 0 {
		t.Fatalf("identical work must agree regardless of wall time, got %v", diffs)
	}
	// Work drift of a single unit is a difference: exact by design.
	drifted := map[string]float64{`rwc_work_dijkstra_pops_total{policy="dynamic"}`: 6871}
	c, err := loadTotals(writePerfArtifact(t, dir, "c.json", time.Millisecond, drifted))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := obs.DiffTotals(a, c, 0); len(diffs) != 1 {
		t.Fatalf("work drift must diff, got %v", diffs)
	}
}

func TestLoadTotalsPerfWithoutWork(t *testing.T) {
	dir := t.TempDir()
	path := writePerfArtifact(t, dir, "empty.json", time.Millisecond, nil)
	totals, err := loadTotals(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) != 0 {
		t.Fatalf("totals = %v, want empty for a work-less perf artifact", totals)
	}
}
