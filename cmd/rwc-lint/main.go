// Command rwc-lint runs the repository's custom static-analysis suite
// (see internal/lint): determinism and unit-hygiene analyzers the
// reproduction's correctness argument depends on.
//
// Usage:
//
//	rwc-lint [flags] [package patterns]
//
// With no patterns it checks ./... — the whole module, test files
// included. Packages are loaded and analyzed in import order so
// cross-package facts (mapiter taint, seriesname registrations)
// resolve; analysis fans out per package on an internal/par pool
// (-workers), and both the text and -json outputs are byte-identical
// for any workers value. It prints one line per finding and exits
// non-zero if any finding survives //nolint filtering and the
// -baseline file, so `make lint` and CI can gate on it. Run it from
// inside the module (package resolution shells out to `go list`).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/par"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
		tests    = flag.Bool("tests", true, "also check _test.go files")
		maxDiags = flag.Int("max", 0, "stop after this many findings (0 = unlimited)")
		jsonOut  = flag.Bool("json", false, "emit findings as deterministic JSON on stdout")
		baseline = flag.String("baseline", "", "baseline file of accepted findings to subtract")
		workers  = flag.Int("workers", par.Workers(0), "analysis workers (default GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	loader := lint.NewLoader()
	var loaded []*lint.Package
	for _, u := range loadUnits(pkgs, *tests) {
		pkg, err := loader.LoadFiles(u.path, u.files)
		if err != nil {
			fatalf("%v", err)
		}
		loaded = append(loaded, pkg)
	}

	diags, err := lint.RunParallel(loaded, analyzers, *workers)
	if err != nil {
		fatalf("%v", err)
	}

	findings := render(loader, diags)
	var base *baselineFile
	if *baseline != "" {
		base, err = loadBaseline(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		findings = base.subtract(findings)
		for _, stale := range base.stale() {
			fmt.Fprintf(os.Stderr, "rwc-lint: stale baseline entry (matched nothing): %s: %s (%s)\n",
				stale.File, stale.Message, stale.Analyzer)
		}
	}

	if *jsonOut {
		writeJSON(os.Stdout, findings, base)
	} else {
		for i, f := range findings {
			if *maxDiags > 0 && i >= *maxDiags {
				fmt.Fprintf(os.Stderr, "rwc-lint: %d further findings suppressed by -max\n", len(findings)-i)
				break
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rwc-lint: "+format+"\n", args...)
	os.Exit(2)
}

// finding is one diagnostic in output form. File paths are
// slash-separated and relative to the working directory, so JSON
// output is byte-identical across runs from the same module root.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func render(loader *lint.Loader, diags []lint.Diagnostic) []finding {
	cwd, _ := os.Getwd()
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		file := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, finding{
			Analyzer: d.Analyzer.Name,
			File:     filepath.ToSlash(file),
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// jsonReport is the machine-readable output shape. Field order is
// fixed by the struct, findings are pre-sorted, and no maps are
// involved, so the bytes are deterministic.
type jsonReport struct {
	Version   int       `json:"version"`
	Findings  []finding `json:"findings"`
	Baselined int       `json:"baselined"`
}

func writeJSON(w io.Writer, findings []finding, base *baselineFile) {
	rep := jsonReport{Version: 1, Findings: findings}
	if rep.Findings == nil {
		rep.Findings = []finding{}
	}
	if base != nil {
		rep.Baselined = base.matched
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rep); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

// baselineEntry identifies an accepted finding by analyzer, file, and
// message — line numbers drift under unrelated edits, so they are
// deliberately not part of the key.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

type baselineFile struct {
	entries []baselineEntry
	used    []bool
	matched int
}

func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var raw struct {
		Version  int             `json:"version"`
		Findings []baselineEntry `json:"findings"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if raw.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", path, raw.Version)
	}
	return &baselineFile{entries: raw.Findings, used: make([]bool, len(raw.Findings))}, nil
}

func (b *baselineFile) subtract(findings []finding) []finding {
	var out []finding
	for _, f := range findings {
		hit := false
		for i, e := range b.entries {
			if e.Analyzer == f.Analyzer && e.File == f.File && e.Message == f.Message {
				b.used[i] = true
				hit = true
				break
			}
		}
		if hit {
			b.matched++
		} else {
			out = append(out, f)
		}
	}
	return out
}

func (b *baselineFile) stale() []baselineEntry {
	var out []baselineEntry
	for i, e := range b.entries {
		if !b.used[i] {
			out = append(out, e)
		}
	}
	return out
}

func selectAnalyzers(all []*lint.Analyzer, only string) []*lint.Analyzer {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			fatalf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out
}

// listedPackage is the subset of `go list -json` output the driver
// needs to reconstruct each package's file groups and import edges.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// loadUnit is one type-check group: the package proper (with
// in-package tests) or an external _test package.
type loadUnit struct {
	path    string
	files   []string
	imports []string
}

// loadUnits flattens the listed packages into type-check groups
// ordered so that every module-local import of a group precedes it.
// That order lets the Loader's package cache resolve module imports
// to the exact packages being analyzed (object identity for facts)
// and gives the analysis scheduler its dependency levels. Cgo files
// are excluded: go/types cannot check import "C" without a full cgo
// preprocessing pass, and the module is cgo-free by policy.
func loadUnits(pkgs []*listedPackage, tests bool) []loadUnit {
	// Deterministic input order regardless of go list's.
	sort.SliceStable(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	var units []loadUnit
	for _, p := range pkgs {
		abs := func(names []string) []string {
			out := make([]string, len(names))
			for i, n := range names {
				out[i] = filepath.Join(p.Dir, n)
			}
			return out
		}
		main := abs(p.GoFiles)
		imports := append([]string{}, p.Imports...)
		if tests {
			main = append(main, abs(p.TestGoFiles)...)
			imports = append(imports, p.TestImports...)
		}
		if len(main) > 0 {
			units = append(units, loadUnit{path: p.ImportPath, files: main, imports: imports})
		}
		if tests && len(p.XTestGoFiles) > 0 {
			units = append(units, loadUnit{
				path:  p.ImportPath,
				files: abs(p.XTestGoFiles),
				// The external test package always depends on the
				// package proper (same import path).
				imports: append([]string{p.ImportPath}, p.XTestImports...),
			})
		}
	}
	ordered, err := topoUnits(units)
	if err != nil {
		fatalf("%v", err)
	}
	return ordered
}

// topoUnits topologically sorts load units by module-local imports,
// keeping input order among ties.
func topoUnits(units []loadUnit) ([]loadUnit, error) {
	first := map[string]int{}
	for i, u := range units {
		if _, ok := first[u.path]; !ok {
			first[u.path] = i
		}
	}
	indeg := make([]int, len(units))
	dependents := make([][]int, len(units))
	for i, u := range units {
		seen := map[int]bool{}
		for _, imp := range u.imports {
			if j, ok := first[imp]; ok && j != i && !seen[j] {
				seen[j] = true
				dependents[j] = append(dependents[j], i)
				indeg[i]++
			}
		}
		// An external _test unit also waits for its package proper.
		if j, ok := first[u.path]; ok && j != i && !seen[j] {
			dependents[j] = append(dependents[j], i)
			indeg[i]++
		}
	}
	var order []int
	scheduled := make([]bool, len(units))
	for len(order) < len(units) {
		progress := false
		for i := range units {
			if !scheduled[i] && indeg[i] == 0 {
				scheduled[i] = true
				order = append(order, i)
				for _, j := range dependents[i] {
					indeg[j]--
				}
				progress = true
			}
		}
		if !progress {
			return nil, errors.New("import cycle among listed packages")
		}
	}
	out := make([]loadUnit, len(order))
	for i, idx := range order {
		out[i] = units[idx]
	}
	return out, nil
}

func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
