// Command rwc-lint runs the repository's custom static-analysis suite
// (see internal/lint): determinism and unit-hygiene analyzers the
// reproduction's correctness argument depends on.
//
// Usage:
//
//	rwc-lint [flags] [package patterns]
//
// With no patterns it checks ./... — the whole module, test files
// included. It prints one line per finding and exits non-zero if any
// finding survives //nolint filtering, so `make lint` and CI can gate
// on it. Run it from inside the module (package resolution shells out
// to `go list`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
		tests    = flag.Bool("tests", true, "also check _test.go files")
		maxDiags = flag.Int("max", 0, "stop after this many findings (0 = unlimited)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		fatalf("%v", err)
	}

	loader := lint.NewLoader()
	var loaded []*lint.Package
	for _, p := range pkgs {
		for _, group := range p.fileGroups(*tests) {
			if len(group) == 0 {
				continue
			}
			pkg, err := loader.LoadFiles(p.ImportPath, group)
			if err != nil {
				fatalf("%v", err)
			}
			loaded = append(loaded, pkg)
		}
	}

	diags, err := lint.Run(loaded, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for i, d := range diags {
		if *maxDiags > 0 && i >= *maxDiags {
			fmt.Fprintf(os.Stderr, "rwc-lint: %d further findings suppressed by -max\n", len(diags)-i)
			break
		}
		fmt.Printf("%s: %s (%s)\n", loader.Fset().Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rwc-lint: "+format+"\n", args...)
	os.Exit(2)
}

func selectAnalyzers(all []*lint.Analyzer, only string) []*lint.Analyzer {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			fatalf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out
}

// listedPackage is the subset of `go list -json` output the driver
// needs to reconstruct each package's file groups.
type listedPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// fileGroups returns up to two absolute-path file groups: the package
// proper (with in-package tests) and, separately, the external _test
// package. Both type-check under the same import path so path-keyed
// lint policies (internal/rng exemption, simulation-package bans)
// apply to both halves. Cgo files are excluded: go/types cannot check
// import "C" without a full cgo preprocessing pass, and the module is
// cgo-free by policy.
func (p *listedPackage) fileGroups(tests bool) [][]string {
	abs := func(names []string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = filepath.Join(p.Dir, n)
		}
		return out
	}
	main := abs(p.GoFiles)
	if tests {
		main = append(main, abs(p.TestGoFiles)...)
	}
	groups := [][]string{main}
	if tests && len(p.XTestGoFiles) > 0 {
		groups = append(groups, abs(p.XTestGoFiles))
	}
	return groups
}

func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
