// Command rwc-experiments regenerates every table and figure of the
// paper's evaluation and prints them as text tables.
//
// Usage:
//
//	rwc-experiments [-quick] [-seed N] [-figure name] [-workers N]
//	                [-metrics-out m.prom] [-trace-out t.jsonl]
//	                [-manifest-out run.json] [-hist-out run.hist]
//	                [-hist-retain N] [-hist-budget N]
//	                [-perf-out perf.json] [-perf-profile-dir d]
//	                [-serve addr] [-pprof addr] [-log level] [-linger]
//
// Figures: fig1, fig2a, fig2b, fig3a, fig3b, fig4, fig4c, fig5, fig6b,
// fig7, fig8, theorem1, throughput, availability, sensitivity,
// safeguards, all (default).
//
// The -*-out flags enable the observability layer: per-figure spans and
// counters (plus everything the underlying simulations record) land in
// the metrics/trace files, and the manifest records the seed, options,
// and per-figure wall durations. -serve (and -pprof, the same server on
// a second address) exposes the live operations plane — /metrics,
// /healthz, /readyz, /runz, the SSE /traces tail, /debug/pprof —
// without perturbing the run. -log enables structured stderr progress
// logging; -linger keeps serving after the figures finish.
//
// -perf-out writes the wall-clock perf artifact (internal/obs/perf):
// one latency phase per figure, runtime memory/GC deltas, and a copy
// of the deterministic rwc_work_* counters; /perfz serves the live
// snapshot. Wall capture is a segregated side channel — enabling it
// leaves stdout and every other artifact byte-identical.
// -perf-profile-dir additionally writes run-scoped cpu.pprof and
// heap.pprof under the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/olog"
	"repro/internal/obs/perf"
	"repro/internal/obs/serve"
	"repro/internal/par"
	"repro/internal/wan"
)

// tabler is any experiment result.
type tabler interface{ Table() *experiments.Table }

// experimentFunc runs one experiment.
type experimentFunc func(experiments.Options) (tabler, error)

// wrap adapts a concrete experiment to experimentFunc.
func wrap[T tabler](f func(experiments.Options) (T, error)) experimentFunc {
	return func(o experiments.Options) (tabler, error) { return f(o) }
}

func main() {
	quick := flag.Bool("quick", false, "run the scaled-down configuration (seconds instead of minutes)")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
	figure := flag.String("figure", "all", "which figure to regenerate")
	format := flag.String("format", "text", "output format: text, csv, or md")
	metricsOut := flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file")
	traceOut := flag.String("trace-out", "", "write the per-figure trace as JSONL to this file")
	manifestOut := flag.String("manifest-out", "", "write the run manifest as JSON to this file")
	flightOut := flag.String("flight-out", "", "record the flight log (per-link decision audit of the throughput simulation) to this file")
	flightLinks := flag.Int("flight-links", flight.DefaultMaxLinks, "cardinality budget: links granted live labeled series (the log always carries every link)")
	histOut := flag.String("hist-out", "", "enable the metrics-history store and write it to this file at exit (binary; .jsonl suffix selects JSONL)")
	histRetain := flag.Int("hist-retain", hist.DefaultRetain, "raw samples retained per history series before downsampling")
	histBudget := flag.Int("hist-budget", hist.DefaultMaxSeries, "cardinality budget: history series admitted per fan-out shard (negative = unlimited)")
	perfOut := flag.String("perf-out", "", "write the wall-clock perf artifact (per-figure latencies, memory deltas, rwc_work_* copy) to this file; never perturbs the deterministic artifacts")
	perfProfileDir := flag.String("perf-profile-dir", "", "also write run-scoped cpu.pprof and heap.pprof under this directory (requires -perf-out)")
	simTopology := flag.String("sim-topology", "", "override the throughput simulation's backbone (abilene, us, random[:N], continental:N); empty keeps Abilene")
	simWavelengths := flag.Int("sim-wavelengths", 0, "wavelengths per fiber for -sim-topology runs (0 = 2)")
	simMaxDemands := flag.Int("sim-max-demands", 0, "keep only the N largest gravity demands in the throughput simulation (0 = all; continental topologies default to 4×nodes)")
	workers := flag.Int("workers", 0, "fan-out width for figures and the fleet/simulation work inside them (0 = GOMAXPROCS); results are identical for every value")
	serveAddr := flag.String("serve", "", "serve the live operations plane (/metrics, /healthz, /readyz, /runz, /traces, /debug/pprof) on this address (e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "serve the same operations plane on a second address")
	logLevel := flag.String("log", "", "structured stderr logging level: debug, info, warn, error (empty = off)")
	linger := flag.Bool("linger", false, "keep serving after the figures finish, until SIGINT/SIGTERM")
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
		opts.Dataset.Seed = *seed
	}
	opts.Workers = *workers
	if *simTopology != "" {
		// Validate the spec up front with the same path that will build
		// it, so a bad -sim-topology fails with exit 2 before any figure
		// runs. The wavelength check rides along (exit 2 on e.g. 0).
		wl := *simWavelengths
		if wl <= 0 {
			wl = 2
		}
		probe, err := wan.ParseTopology(*simTopology, wl, opts.Seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
			os.Exit(2)
		}
		opts.SimTopology = *simTopology
		opts.SimWavelengths = *simWavelengths
		opts.SimMaxDemands = *simMaxDemands
		if opts.SimMaxDemands == 0 && strings.HasPrefix(*simTopology, "continental") {
			opts.SimMaxDemands = 4 * probe.G.NumNodes()
		}
	} else if *simWavelengths < 0 {
		fmt.Fprintf(os.Stderr, "rwc-experiments: negative -sim-wavelengths %d\n", *simWavelengths)
		os.Exit(2)
	}
	if *simMaxDemands < 0 {
		fmt.Fprintf(os.Stderr, "rwc-experiments: negative -sim-max-demands %d\n", *simMaxDemands)
		os.Exit(2)
	}

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
		os.Exit(2)
	}
	if *perfProfileDir != "" && *perfOut == "" {
		fmt.Fprintf(os.Stderr, "rwc-experiments: -perf-profile-dir requires -perf-out\n")
		os.Exit(2)
	}

	var o *obs.Obs
	if *metricsOut != "" || *traceOut != "" || *manifestOut != "" || *flightOut != "" ||
		*histOut != "" || *perfOut != "" || *serveAddr != "" || *pprofAddr != "" || *logLevel != "" {
		o = obs.New("rwc-experiments")
		start := time.Now()
		o.Wall = obs.ClockFunc(func() time.Duration { return time.Since(start) })
		o.Manifest.SetSeed(opts.Seed)
		flag.VisitAll(func(fl *flag.Flag) {
			o.Manifest.SetOption(fl.Name, fl.Value.String())
		})
		if *logLevel != "" {
			o.Log = olog.New(os.Stderr, level).WithClock(o.Clock)
		}
		opts.Obs = o
	}

	// The flight recorder owns its registry and is never merged into the
	// app bundle, so recording cannot perturb the artifacts below.
	if *flightOut != "" {
		opts.Flight = flight.New(flight.Options{MaxLinks: *flightLinks})
	}

	// The metrics-history store is attached before any figure registers
	// a series; each figure's obs child gets its own shard, so the
	// archive is byte-identical for every -workers.
	var histStore *hist.Store
	if *histOut != "" {
		histStore = hist.New(hist.Options{
			Retain:    *histRetain,
			MaxSeries: *histBudget,
			Tool:      "rwc-experiments",
			Seed:      opts.Seed,
		})
		o.Metrics.SetHistory(histStore.Root().Bind(o.Clock))
	}

	// The perf recorder is the wall-clock side channel: one latency
	// phase per figure, never merged into the deterministic sinks, so
	// every artifact below stays byte-identical with or without it.
	var perfRec *perf.Recorder
	if *perfOut != "" {
		perfRec = perf.New("rwc-experiments")
		if *perfProfileDir != "" {
			if err := perfRec.StartProfiles(*perfProfileDir); err != nil {
				fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}

	// The live operations plane shares one helper with rwc-wansim
	// (internal/obs/serve); serving reads snapshots only, so figures
	// and artifacts are unaffected.
	addrs := []string{}
	if *serveAddr != "" {
		addrs = append(addrs, *serveAddr)
	}
	if *pprofAddr != "" && *pprofAddr != *serveAddr {
		addrs = append(addrs, *pprofAddr)
	}
	var servers []*serve.Server
	for _, addr := range addrs {
		srv, err := serve.Start(addr, serve.Options{Obs: o, Tool: "rwc-experiments", Seed: opts.Seed, Flight: opts.Flight, Hist: histStore, Perf: perfRec})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rwc-experiments: serving operations plane on http://%s\n", srv.Addr())
		srv.SetReady(true)
		servers = append(servers, srv)
	}

	// "all" runs these; fig1series (2000 long-form rows, meant for CSV
	// plotting) stays opt-in by name.
	order := []string{
		"fig1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "fig4c",
		"fig5", "fig6b", "fig7", "fig8", "theorem1", "throughput", "availability",
		"sensitivity", "safeguards",
	}
	registry := map[string]experimentFunc{
		"fig1":         wrap(experiments.Figure1),
		"fig1series":   wrap(experiments.Figure1Series),
		"fig2a":        wrap(experiments.Figure2a),
		"fig2b":        wrap(experiments.Figure2b),
		"fig3a":        wrap(experiments.Figure3a),
		"fig3b":        wrap(experiments.Figure3b),
		"fig4":         wrap(experiments.Figure4),
		"fig4c":        wrap(experiments.Figure4c),
		"fig5":         wrap(experiments.Figure5),
		"fig6b":        wrap(experiments.Figure6b),
		"fig7":         wrap(experiments.Figure7),
		"fig8":         wrap(experiments.Figure8),
		"theorem1":     wrap(experiments.Theorem1),
		"throughput":   wrap(experiments.ThroughputGains),
		"availability": wrap(experiments.AvailabilityGains),
		"sensitivity":  wrap(experiments.ThresholdSensitivity),
		"safeguards":   wrap(experiments.ControllerAblation),
	}

	var selected []string
	if *figure == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*figure, ",") {
			name = strings.TrimSpace(name)
			if _, ok := registry[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q; known: %s, all\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	render := func(t *experiments.Table) error { return t.Render(os.Stdout) }
	switch *format {
	case "text":
		mode := "paper-scale"
		if *quick {
			mode = "quick"
		}
		fmt.Printf("Run, Walk, Crawl reproduction — %s run (%d links, %v horizon)\n\n",
			mode, opts.Dataset.Links(), opts.Dataset.Duration)
	case "csv":
		render = func(t *experiments.Table) error { return t.RenderCSV(os.Stdout) }
	case "md":
		render = func(t *experiments.Table) error { return t.RenderMarkdown(os.Stdout) }
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (text, csv, md)\n", *format)
		os.Exit(2)
	}

	// Figures fan out over -workers. Each figure computes against a
	// private obs child (created up front, so the fan-out is
	// deterministic); children are merged and tables rendered in figure
	// order, keeping stdout, metrics, and traces identical for every
	// worker count. One consequence vs. the old serial loop: every
	// figure's trace now starts at sim time 0 instead of inheriting the
	// leftover clock of the preceding figure.
	children := make([]*obs.Obs, len(selected))
	for i := range children {
		children[i] = o.Child()
	}
	err = par.Stream(
		par.Opts{Workers: *workers, Name: "experiments/figures", Obs: o},
		len(selected),
		func(worker, i int) (tabler, error) {
			fopts := opts
			fopts.Obs = children[i]
			// One perf phase per figure; Phase on a nil recorder is a
			// no-op, so the plain path pays nothing.
			endPerf := perfRec.Phase("experiments.figure/" + selected[i])
			res, err := registry[selected[i]](fopts)
			endPerf()
			if err != nil {
				return nil, fmt.Errorf("%s: %v", selected[i], err)
			}
			return res, nil
		},
		func(i int, res tabler) error {
			o.Merge(children[i])
			if err := render(res.Table()); err != nil {
				return fmt.Errorf("%s: render: %v", selected[i], err)
			}
			return nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if o != nil {
		o.FinishManifest()
		write := func(path string, f func(*os.File) error) {
			out, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
				os.Exit(1)
			}
			err = f(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsOut != "" {
			write(*metricsOut, func(f *os.File) error { return o.Metrics.WritePrometheus(f) })
		}
		if *traceOut != "" {
			write(*traceOut, func(f *os.File) error { return o.Trace.WriteJSONL(f) })
		}
		if *manifestOut != "" {
			write(*manifestOut, func(f *os.File) error { return o.Manifest.WriteJSON(f) })
		}
		if histStore != nil {
			archive := histStore.Archive()
			write(*histOut, func(f *os.File) error {
				if strings.HasSuffix(*histOut, ".jsonl") {
					return archive.WriteJSONL(f)
				}
				return archive.WriteBinary(f)
			})
		}
		// Written last so the trailer embeds the final artifact state.
		if opts.Flight != nil {
			write(*flightOut, func(f *os.File) error {
				return opts.Flight.WriteLog(f, flight.Meta{Tool: "rwc-experiments", Seed: int64(opts.Seed)}, o)
			})
		}
		// Profiles stop before the perf artifact so the heap snapshot
		// covers the whole run; the Work section copies the final
		// rwc_work_* totals out of the deterministic registry.
		if perfRec != nil {
			if err := perfRec.StopProfiles(); err != nil {
				fmt.Fprintf(os.Stderr, "rwc-experiments: %v\n", err)
				os.Exit(1)
			}
			write(*perfOut, func(f *os.File) error {
				return perfRec.WriteJSON(f, perf.FilterWork(o.Metrics.Totals()))
			})
		}
	}

	// -linger keeps the operations plane up after the figures so
	// scrapers can read the final state (artifacts are already
	// written), sharing the daemon tail so the exit path drains SSE
	// sessions with shutdown-cause accounting like rwc-wansimd does.
	if *linger && len(servers) > 0 {
		fmt.Fprintf(os.Stderr, "rwc-experiments: run complete; lingering until SIGINT/SIGTERM\n")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		daemon.Tail(ch, servers, 0, nil)
	}
}
