// Command rwc-replay reads flight logs (recorded with -flight-out):
// re-rendering a run's artifacts, explaining one link's capacity
// decision, or bisecting two logs to the first diverging round.
//
// Usage:
//
//	rwc-replay replay  run.flight [-metrics-out m.prom] [-trace-out t.jsonl]
//	                              [-links-out links.prom] [-jsonl frames.jsonl]
//	                              [-verify-metrics m.prom] [-verify-trace t.jsonl]
//	rwc-replay explain run.flight -round N (-link src->dst | -edge id)
//	                              [-policy dynamic] [-run name]
//	rwc-replay hist    run.flight [-hist-out run.hist] [-hist-jsonl h.jsonl]
//	                              [-interval 6h]
//	rwc-replay bisect  a.flight b.flight
//
// replay prints a log summary and verifies every frame's state hash;
// -metrics-out and -trace-out re-render the metrics/trace artifacts
// from the log's trailer, byte-identical to the files the recording
// run wrote (-verify-metrics / -verify-trace assert that against the
// originals, exit 1 on mismatch). -links-out renders the per-link
// labeled series; -jsonl exports the frames as JSONL.
//
// explain prints the causal chain behind one link's capacity in one
// round: SNR sample → modulation table lookup → fake-edge ⟨capacity,
// penalty⟩ → solver selection → decision gate → applied capacity.
//
// hist rebuilds the metrics-history store from the log's frames —
// byte-identical to the recorder-owned series of a live -hist-out run,
// because flight frames are a superset of the history the recorder
// captures. -hist-out writes the canonical binary archive, -hist-jsonl
// the JSONL form; -interval overrides the round interval for logs
// whose header predates the interval field.
//
// bisect exits 0 when the logs are behaviorally identical, 1 with the
// first diverging (round, link, field) on divergence, 2 on errors —
// the same contract as rwc-obsdiff.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/flight"
)

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rwc-replay: %v\n", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rwc-replay <replay|explain|hist|bisect> [flags] <log...>")
	os.Exit(2)
}

// parseMixed parses a subcommand's flags while allowing positional
// arguments (the log paths) to come first, between, or after flags —
// stdlib flag parsing stops at the first positional, so this re-parses
// the remainder after collecting each one.
func parseMixed(fs *flag.FlagSet, args []string) []string {
	var positional []string
	for {
		_ = fs.Parse(args)
		rest := fs.Args()
		if len(rest) == 0 {
			return positional
		}
		positional = append(positional, rest[0])
		args = rest[1:]
	}
}

func readLog(path string) *flight.Log {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	log, err := flight.ReadLog(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return log
}

// writeArtifact writes one re-rendered artifact to path.
func writeArtifact(path string, render func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := render(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// renderMetrics re-renders the recording run's Prometheus exposition
// from the trailer's registry dump.
func renderMetrics(log *flight.Log, f *os.File) error {
	return log.Trailer.Metrics.Restore().WritePrometheus(f)
}

// renderTrace re-renders the recording run's JSONL trace from the
// trailer's canonical event lines.
func renderTrace(log *flight.Log, f *os.File) error {
	for _, line := range log.Trailer.Trace {
		if _, err := f.Write(append([]byte(line), '\n')); err != nil {
			return err
		}
	}
	return nil
}

// verifyAgainst renders an artifact into memory and byte-compares it
// with an original file, exiting 1 on mismatch.
func verifyAgainst(name, original string, render func(*bytes.Buffer) error) {
	want, err := os.ReadFile(original)
	if err != nil {
		fatal(err)
	}
	var got bytes.Buffer
	if err := render(&got); err != nil {
		fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		fmt.Fprintf(os.Stderr, "rwc-replay: re-rendered %s differs from %s (%d vs %d bytes)\n",
			name, original, got.Len(), len(want))
		os.Exit(1)
	}
	fmt.Printf("%s: byte-identical to %s\n", name, original)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	metricsOut := fs.String("metrics-out", "", "re-render the run's Prometheus metrics to this file")
	traceOut := fs.String("trace-out", "", "re-render the run's JSONL trace to this file")
	linksOut := fs.String("links-out", "", "render the per-link labeled series (Prometheus text) to this file")
	jsonlOut := fs.String("jsonl", "", "export the frames as JSONL to this file")
	verifyMetrics := fs.String("verify-metrics", "", "byte-compare the re-rendered metrics against this original (exit 1 on mismatch)")
	verifyTrace := fs.String("verify-trace", "", "byte-compare the re-rendered trace against this original (exit 1 on mismatch)")
	logs := parseMixed(fs, args)
	if len(logs) != 1 {
		usage()
	}
	log := readLog(logs[0])
	if err := log.VerifyHashes(); err != nil {
		fatal(err)
	}
	fmt.Print(log.Summary())
	fmt.Println("state hashes: verified")

	if *metricsOut != "" {
		writeArtifact(*metricsOut, func(f *os.File) error { return renderMetrics(log, f) })
	}
	if *traceOut != "" {
		writeArtifact(*traceOut, func(f *os.File) error { return renderTrace(log, f) })
	}
	if *linksOut != "" {
		writeArtifact(*linksOut, func(f *os.File) error {
			return log.Trailer.Series.Restore().WritePrometheus(f)
		})
	}
	if *jsonlOut != "" {
		writeArtifact(*jsonlOut, func(f *os.File) error { return log.WriteJSONL(f) })
	}
	if *verifyMetrics != "" {
		verifyAgainst("metrics", *verifyMetrics, func(b *bytes.Buffer) error {
			return log.Trailer.Metrics.Restore().WritePrometheus(b)
		})
	}
	if *verifyTrace != "" {
		verifyAgainst("trace", *verifyTrace, func(b *bytes.Buffer) error {
			for _, line := range log.Trailer.Trace {
				if _, err := b.Write(append([]byte(line), '\n')); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	round := fs.Int("round", -1, "round to explain (required)")
	link := fs.String("link", "", "link name, e.g. Seattle->Denver")
	edge := fs.Int("edge", -1, "edge ID (alternative to -link)")
	policy := fs.String("policy", "dynamic", "policy whose decision to explain")
	run := fs.String("run", "", "run name inside the log (default the unnamed run)")
	logs := parseMixed(fs, args)
	if len(logs) != 1 || *round < 0 || (*link == "" && *edge < 0) {
		usage()
	}
	ref := *link
	if ref == "" {
		ref = fmt.Sprint(*edge)
	}
	log := readLog(logs[0])
	e, err := log.Explain(*run, *policy, *round, ref)
	if err != nil {
		fatal(err)
	}
	fmt.Print(e.Format())
}

func cmdHist(args []string) {
	fs := flag.NewFlagSet("hist", flag.ExitOnError)
	histOut := fs.String("hist-out", "", "write the rebuilt history archive (canonical binary) to this file")
	histJSONL := fs.String("hist-jsonl", "", "write the rebuilt history archive as JSONL to this file")
	interval := fs.Duration("interval", 0, "round interval for sim-time stamps (0 = take it from the log header)")
	logs := parseMixed(fs, args)
	if len(logs) != 1 || (*histOut == "" && *histJSONL == "") {
		usage()
	}
	log := readLog(logs[0])
	if *interval == 0 && log.Meta.Interval == 0 {
		fatal(fmt.Errorf("%s: log header carries no round interval; pass -interval", logs[0]))
	}
	archive := log.History(*interval).Archive()
	if *histOut != "" {
		writeArtifact(*histOut, func(f *os.File) error { return archive.WriteBinary(f) })
	}
	if *histJSONL != "" {
		writeArtifact(*histJSONL, func(f *os.File) error { return archive.WriteJSONL(f) })
	}
	fmt.Printf("history: %d series rebuilt from %d frames\n", len(archive.Series), len(log.Frames))
}

func cmdBisect(args []string) {
	fs := flag.NewFlagSet("bisect", flag.ExitOnError)
	logs := parseMixed(fs, args)
	if len(logs) != 2 {
		usage()
	}
	d := flight.Bisect(readLog(logs[0]), readLog(logs[1]))
	fmt.Println(d)
	if d.Found {
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "replay":
		cmdReplay(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "hist":
		cmdHist(os.Args[2:])
	case "bisect":
		cmdBisect(os.Args[2:])
	default:
		usage()
	}
}
