// Command rwc-wansimd runs the WAN simulation as a long-running
// service: a reconciler daemon that advances TE rounds on a
// configurable cadence, hot-reloads its config file across
// generations, exposes live service SLIs (rwc_sli_*) next to the
// simulation's own metrics, and shuts down gracefully in two passes —
// stop intake at a round boundary, drain the in-flight round, flush
// every artifact.
//
// Usage:
//
//	rwc-wansimd [-config daemon.json] [-tick 0s] [-poll 2s]
//	            [-serve addr] [-tail] [simulation flags as rwc-wansim]
//	            [artifact flags as rwc-wansim]
//
// Configuration comes from -config (a JSON Params file, watched for
// changes every -poll) or, when -config is absent, from the same
// simulation flags rwc-wansim takes. A reload with identical content
// is a provable no-op: the rwc_sli_config_generation gauge bumps and
// nothing else changes. A changed config drains the running
// generation at a round boundary and starts the next one with the
// sim-time axis continued past the drained rounds. An invalid config
// never touches the running simulation: the daemon keeps the last
// known good parameters and counts the failure in
// rwc_sli_config_reloads_total{result="failure"}.
//
// -tick paces rounds (one simulation round across every policy per
// tick); 0 free-runs the budget exactly like the one-shot tool. With
// a fixed budget, no reload, and -tail=false, the daemon's stdout and
// every artifact are byte-identical to the equivalent rwc-wansim run:
// service-mode accounting lives in the SLI layer's own registry and
// is only rendered live (on /metrics under the rwc_sli_ prefix, on
// /sliz, /queryz, /seriesz), never into run artifacts.
//
// On SIGINT/SIGTERM the daemon stops intake, lets the in-flight round
// complete, flushes metrics/trace/manifest/hist/flight/perf, drains
// the operations plane (SSE sessions end with their undelivered
// buffers counted under cause="shutdown"), and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/obs/alert"
	"repro/internal/obs/flight"
	"repro/internal/obs/hist"
	"repro/internal/obs/olog"
	"repro/internal/obs/perf"
	"repro/internal/obs/serve"
	"repro/internal/obs/sli"
)

// usageError reports a flag/config-validation failure: stderr, exit 2.
func usageError(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansimd: %v\n", err)
	os.Exit(2)
}

// fatal reports a runtime failure: stderr, exit 1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rwc-wansimd: %v\n", err)
	os.Exit(1)
}

func main() {
	configPath := flag.String("config", "", "JSON config file defining the simulation (daemon.Params); watched for hot reloads")
	poll := flag.Duration("poll", 2*time.Second, "config file watch cadence (requires -config)")
	tick := flag.Duration("tick", 0, "round cadence: one simulation round per tick across every policy (0 = free-run the budget)")
	tail := flag.Bool("tail", true, "keep serving after the round budget completes, until SIGINT/SIGTERM")

	topology := flag.String("topology", "abilene", "backbone: abilene, us, random[:N], or continental:N (ignored when -config is set)")
	rounds := flag.Int("rounds", 28, "TE round budget per config generation")
	interval := flag.Duration("interval", 6*time.Hour, "simulated time between rounds")
	policy := flag.String("policy", "all", "policy: static100, staticmax, dynamic, or all")
	demand := flag.Float64("demand", 1.2, "offered load as a fraction of static-100G capacity")
	maxDemands := flag.Int("max-demands", 0, "keep only the N largest gravity demands (0 = all)")
	wavelengths := flag.Int("wavelengths", 2, "wavelengths per fiber")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	hitless := flag.Bool("hitless", false, "assume hitless (35 ms) capacity changes instead of 68 s")
	lengthAware := flag.Bool("lengthaware", false, "derive per-fiber SNR baselines from link length")
	teAlg := flag.String("te", "", "TE algorithm: greedy (default), shortest-path, kpath, maxconcurrent")
	workers := flag.Int("workers", 0, "fan-out width (0 = GOMAXPROCS); results identical for every value")

	metricsOut := flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file at shutdown")
	traceOut := flag.String("trace-out", "", "write the decision trace as JSONL to this file at shutdown")
	manifestOut := flag.String("manifest-out", "", "write the run manifest as JSON to this file at shutdown")
	flightOut := flag.String("flight-out", "", "record the flight log to this file at shutdown")
	flightLinks := flag.Int("flight-links", flight.DefaultMaxLinks, "cardinality budget: links granted live labeled series")
	histOut := flag.String("hist-out", "", "enable the metrics-history store and write it at shutdown (.jsonl selects JSONL)")
	histRetain := flag.Int("hist-retain", hist.DefaultRetain, "raw samples retained per history series before downsampling")
	histBudget := flag.Int("hist-budget", hist.DefaultMaxSeries, "cardinality budget: history series admitted per fan-out shard")
	perfOut := flag.String("perf-out", "", "write the wall-clock perf artifact at shutdown")
	perfProfileDir := flag.String("perf-profile-dir", "", "also write run-scoped cpu.pprof/heap.pprof here (requires -perf-out)")
	serveAddr := flag.String("serve", "", "serve the live operations plane (/metrics, /sliz, /demandz, /queryz, /traces, ...) on this address")
	logLevel := flag.String("log", "", "structured stderr logging level: debug, info, warn, error (empty = off)")
	alertsOn := flag.Bool("alerts", true, "evaluate the built-in alert rules each round")
	flag.Parse()

	// Resolve initial params: the config file wins; flags are the
	// no-config path and stay byte-compatible with rwc-wansim defaults.
	var params daemon.Params
	if *configPath != "" {
		p, err := daemon.LoadParams(*configPath)
		if err != nil {
			usageError(err)
		}
		params = p
	} else {
		params = daemon.Params{
			Topology:    *topology,
			Wavelengths: *wavelengths,
			Rounds:      *rounds,
			Interval:    daemon.Duration(*interval),
			Policy:      *policy,
			TE:          *teAlg,
			Demand:      *demand,
			MaxDemands:  *maxDemands,
			Seed:        *seed,
			Hitless:     *hitless,
			LengthAware: *lengthAware,
		}.Normalized()
		if err := params.Validate(); err != nil {
			usageError(err)
		}
	}
	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		usageError(err)
	}
	if *perfProfileDir != "" && *perfOut == "" {
		usageError(fmt.Errorf("-perf-profile-dir requires -perf-out"))
	}

	// The deterministic observability bundle, wired exactly as
	// rwc-wansim wires it — that is what keeps the byte-identity
	// acceptance meaningful. Daemon mode always builds it: the service
	// serves /metrics and /traces even when no artifact flags are set.
	o := obs.New("rwc-wansim")
	o.Wall = daemon.WallClock(time.Now())
	o.Manifest.SetSeed(params.Seed)
	flag.VisitAll(func(fl *flag.Flag) {
		o.Manifest.SetOption(fl.Name, fl.Value.String())
	})
	if *logLevel != "" {
		o.Log = olog.New(os.Stderr, level).WithClock(o.Clock)
	}

	var recorder *flight.Recorder
	if *flightOut != "" {
		recorder = flight.New(flight.Options{MaxLinks: *flightLinks})
	}
	var histStore *hist.Store
	if *histOut != "" {
		histStore = hist.New(hist.Options{
			Retain:    *histRetain,
			MaxSeries: *histBudget,
			Tool:      "rwc-wansim",
			Seed:      params.Seed,
		})
		o.Metrics.SetHistory(histStore.Root().Bind(o.Clock))
		recorder.SetHistory(histStore.Root().NewChild(), time.Duration(params.Interval))
	}
	var perfRec *perf.Recorder
	if *perfOut != "" {
		perfRec = perf.New("rwc-wansim")
		if *perfProfileDir != "" {
			if err := perfRec.StartProfiles(*perfProfileDir); err != nil {
				fatal(err)
			}
		}
	}

	// The SLI layer is what makes this a service: live-only indicators
	// in a registry of their own, never in the artifacts above.
	layer := sli.New(sli.Options{Tool: "rwc-wansimd", Seed: params.Seed})

	var rules []alert.Rule
	if *alertsOn {
		rules = alert.DefaultWANRules()
		if histStore != nil {
			rules = append(rules, alert.DefaultSLORules()...)
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	d := daemon.New(daemon.Options{
		Tool:       "rwc-wansimd",
		Params:     params,
		ConfigPath: *configPath,
		Poll:       *poll,
		Tick:       *tick,
		Workers:    *workers,
		Obs:        o,
		SLI:        layer,
		Flight:     recorder,
		Hist:       histStore,
		Perf:       perfRec,
		Alerts:     rules,
		Signals:    sigs,
		Stdout:     os.Stdout,
		Stderr:     os.Stderr,
		Tail:       *tail,
		Artifacts: daemon.Artifacts{
			MetricsOut:  *metricsOut,
			TraceOut:    *traceOut,
			ManifestOut: *manifestOut,
			HistOut:     *histOut,
			FlightOut:   *flightOut,
			PerfOut:     *perfOut,
			FlightMeta:  flight.Meta{Tool: "rwc-wansim", Seed: int64(params.Seed), Interval: time.Duration(params.Interval)},
		},
	})

	if *serveAddr != "" {
		srv, err := serve.Start(*serveAddr, serve.Options{
			Obs:    o,
			Tool:   "rwc-wansimd",
			Seed:   params.Seed,
			Flight: recorder,
			Hist:   histStore,
			Perf:   perfRec,
			SLI:    layer,
			Admit:  d.Admit,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rwc-wansimd: serving operations plane on http://%s\n", srv.Addr())
		d.AttachServers(srv)
	}

	if err := d.Run(); err != nil {
		fatal(err)
	}
}
