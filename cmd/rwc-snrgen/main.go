// Command rwc-snrgen generates a synthetic SNR telemetry fleet (the
// stand-in for the paper's 2.5-year backbone dataset) and writes it in
// the telemetry binary format, optionally with a JSON summary.
//
// Usage:
//
//	rwc-snrgen -out fleet.rwct [-json summary.json] [-fibers N]
//	           [-wavelengths N] [-days N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", "", "output path for the binary fleet (required)")
	jsonOut := flag.String("json", "", "optional output path for a JSON summary")
	fibers := flag.Int("fibers", 12, "number of fiber cables")
	wavelengths := flag.Int("wavelengths", 10, "wavelengths per fiber")
	days := flag.Int("days", 180, "telemetry horizon in days")
	seed := flag.Uint64("seed", 20170701, "generator seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "rwc-snrgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := dataset.DefaultConfig()
	cfg.Fibers = *fibers
	cfg.Fiber.Wavelengths = *wavelengths
	cfg.Duration = time.Duration(*days) * 24 * time.Hour
	cfg.Seed = *seed
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "rwc-snrgen: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("generating %d links × %d days @ 15 min (seed %d)...\n",
		cfg.Links(), *days, *seed)
	fleet, err := dataset.GenerateFleet(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-snrgen: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-snrgen: %v\n", err)
		os.Exit(1)
	}
	n, err := fleet.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwc-snrgen: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes, %d links)\n", *out, n, len(fleet.Links))

	if *jsonOut != "" {
		jf, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-snrgen: %v\n", err)
			os.Exit(1)
		}
		err = fleet.WriteSummaryJSON(jf)
		if cerr := jf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-snrgen: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
