// Command rwc-perfdiff compares two performance records and exits
// nonzero when the new one has regressed — the CI gate that turns the
// repo's perf artifacts into an enforced budget instead of a graph
// nobody reads.
//
// Usage:
//
//	rwc-perfdiff [-old-sha S] [-new-sha S] [flags] OLD NEW
//
// OLD and NEW may each be:
//
//   - a bench JSON document (BENCH_quick.json, as written by
//     rwc-benchjson): benchmark → {ns_per_op, bytes_per_op,
//     allocs_per_op, metrics}
//   - a bench history record (BENCH_history.jsonl): one JSON line per
//     commit; -old-sha / -new-sha select the entry (default: last
//     line). OLD and NEW may be the same file with two SHAs.
//   - a perf artifact (kind "rwc-perf", as written by -perf-out):
//     per-phase wall latencies plus the deterministic rwc_work_*
//     counter copy
//   - a load report (kind "rwc-load", as written by rwc-loadgen):
//     service-side sustained throughput and client latency
//     percentiles from a daemon load run
//
// Wall-clock metrics are noisy, so they get multiplicative headroom:
// ns/op and B/op must not grow past -ns-tol / -bytes-tol (default
// 1.5×), allocs/op past -allocs-tol (default 1.2× — allocation counts
// are near-deterministic, so the band is tighter). Deterministic work
// counters (rwc_work_* in perf artifacts) get no headroom at all: any
// drift is reported, because identical code on identical inputs must
// do identical work. Custom benchmark metrics (b.ReportMetric values,
// e.g. the reproduction's headline numbers) and perf phase wall times
// are reported informationally but never fail the gate — correctness
// belongs to tests, and raw phase latency inherits machine noise that
// per-op normalization can't remove.
//
// Improvements never fail. Metrics present on only one side are
// listed but don't fail either, so adding or renaming a benchmark
// doesn't break the gate.
//
// Exit status: 0 = no regression, 1 = at least one regression,
// 2 = usage or parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/load"
	"repro/internal/obs/perf"
)

// class partitions metrics by how much noise they're allowed.
type class int

const (
	classNs     class = iota // wall time per op: noisy, wide band
	classBytes               // bytes per op: allocator noise, wide band
	classAllocs              // allocs per op: near-deterministic, tight band
	classWork                // deterministic work counters: exact
	classRatio               // bounded fractions (drop/error rates): own band
	classInfo                // informational only: never gates
)

func (c class) String() string {
	switch c {
	case classNs:
		return "ns/op"
	case classBytes:
		return "B/op"
	case classAllocs:
		return "allocs/op"
	case classWork:
		return "work"
	case classRatio:
		return "ratio"
	default:
		return "info"
	}
}

// metric is one comparable value extracted from a record.
type metric struct {
	value float64
	class class
}

// benchResult mirrors rwc-benchjson's per-benchmark object.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

// historyLine mirrors one rwc-benchjson -jsonl record.
type historyLine struct {
	SHA        string                 `json:"sha"`
	Date       string                 `json:"date"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchMetrics flattens a benchmark map into comparable metrics.
func benchMetrics(benches map[string]benchResult) map[string]metric {
	m := make(map[string]metric)
	for name, r := range benches {
		m[name+" ns/op"] = metric{r.NsPerOp, classNs}
		if r.BytesPerOp != 0 {
			m[name+" B/op"] = metric{r.BytesPerOp, classBytes}
		}
		if r.AllocsOp != 0 {
			m[name+" allocs/op"] = metric{r.AllocsOp, classAllocs}
		}
		for unit, v := range r.Metrics {
			m[name+" "+unit] = metric{v, classInfo}
		}
	}
	return m
}

// perfMetrics flattens a perf artifact: exact work counters plus
// informational per-phase mean wall latency.
func perfMetrics(rep perf.Report) map[string]metric {
	m := make(map[string]metric)
	for name, v := range rep.Work {
		m[name] = metric{v, classWork}
	}
	for _, p := range rep.Phases {
		if p.Count > 0 {
			m[p.Name+" mean_ns"] = metric{float64(p.TotalNs) / float64(p.Count), classInfo}
		}
	}
	return m
}

// loadMetrics flattens an rwc-loadgen report. Client latency
// percentiles gate like ns/op; the service's sustained decision rate
// gates inverted (seconds per decision, so slower = growth = finding);
// drop and error fractions gate as bounded ratios; volume figures are
// informational — they measure the offered load, not the service.
func loadMetrics(rep load.Report) map[string]metric {
	m := map[string]metric{
		"loadgen scrape p50_ns":        {float64(rep.Scrape.P50Ns), classNs},
		"loadgen scrape p99_ns":        {float64(rep.Scrape.P99Ns), classNs},
		"loadgen query p99_ns":         {float64(rep.Query.P99Ns), classNs},
		"loadgen scrape max_ns":        {float64(rep.Scrape.MaxNs), classInfo},
		"loadgen sse drop_fraction":    {rep.SSE.DropFraction, classRatio},
		"loadgen demand reject_count":  {float64(rep.Demand.Rejected), classInfo},
		"loadgen demand batches":       {float64(rep.Demand.Batches), classInfo},
		"loadgen sse events_per_sec":   {rep.SSE.EventsPerSec, classInfo},
		"loadgen service rounds_delta": {rep.Service.RoundsDelta, classInfo},
	}
	if rep.Scrape.Requests > 0 {
		m["loadgen scrape error_fraction"] = metric{float64(rep.Scrape.Errors) / float64(rep.Scrape.Requests), classRatio}
	}
	if rep.Demand.Batches > 0 {
		m["loadgen demand error_fraction"] = metric{float64(rep.Demand.Errors) / float64(rep.Demand.Batches), classRatio}
	}
	if rep.Service.DecisionsPerSec > 0 {
		m["loadgen service seconds_per_decision"] = metric{1 / rep.Service.DecisionsPerSec, classNs}
	}
	return m
}

// loadRecord reads one input and normalizes it to metrics. kind names
// what was parsed ("bench", "history", "perf", "load") so the two
// sides can be checked for comparability.
func loadRecord(path, sha string) (kind string, m map[string]metric, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if load.IsReport(data) {
		rep, err := load.Parse(data)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %v", path, err)
		}
		return "load", loadMetrics(rep), nil
	}
	if perf.IsReport(data) {
		var rep perf.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %v", path, err)
		}
		return "perf", perfMetrics(rep), nil
	}
	// History files are JSONL: try line-by-line records with a
	// benchmarks key first, falling back to a single bench document.
	if entries, ok := parseHistory(data); ok {
		e, err := selectEntry(entries, sha, path)
		if err != nil {
			return "", nil, err
		}
		return "history", benchMetrics(e.Benchmarks), nil
	}
	if sha != "" {
		return "", nil, fmt.Errorf("%s: SHA selection requested but the file is not a bench history", path)
	}
	var benches map[string]benchResult
	if err := json.Unmarshal(data, &benches); err != nil {
		return "", nil, fmt.Errorf("%s: not a perf artifact, bench history, or bench document: %v", path, err)
	}
	return "bench", benchMetrics(benches), nil
}

// parseHistory parses rwc-benchjson -jsonl output: every non-blank
// line a JSON object carrying a benchmarks map.
func parseHistory(data []byte) ([]historyLine, bool) {
	var entries []historyLine
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e historyLine
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.Benchmarks == nil {
			return nil, false
		}
		entries = append(entries, e)
	}
	return entries, len(entries) > 0
}

// selectEntry picks the history record for sha (prefix match, so the
// Makefile's short SHAs work against full ones and vice versa), or the
// last record when sha is empty.
func selectEntry(entries []historyLine, sha, path string) (historyLine, error) {
	if sha == "" {
		return entries[len(entries)-1], nil
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if strings.HasPrefix(e.SHA, sha) || strings.HasPrefix(sha, e.SHA) {
			return e, nil
		}
	}
	return historyLine{}, fmt.Errorf("%s: no history entry for sha %q", path, sha)
}

// tolerances maps each class to its allowed growth ratio.
type tolerances struct {
	ns, bytes, allocs, ratio float64
}

func (t tolerances) limit(c class) (float64, bool) {
	switch c {
	case classNs:
		return t.ns, true
	case classBytes:
		return t.bytes, true
	case classAllocs:
		return t.allocs, true
	case classWork:
		return 1.0, true
	case classRatio:
		return t.ratio, true
	default:
		return 0, false
	}
}

// diffLine is one comparison outcome, kept for sorted reporting.
type diffLine struct {
	name     string
	old, new float64
	limit    float64
	class    class
	regress  bool
}

// compare evaluates every metric present on both sides.
func compare(oldM, newM map[string]metric, tol tolerances) (lines []diffLine, onlyOld, onlyNew []string) {
	for name, o := range oldM {
		n, ok := newM[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		limit, gates := tol.limit(o.class)
		if !gates {
			if n.value != o.value { //nolint:nofloateq // informational drift display; exact match means nothing to report
				lines = append(lines, diffLine{name, o.value, n.value, 0, o.class, false})
			}
			continue
		}
		regress := false
		if o.class == classWork {
			// Deterministic work: any drift is a finding.
			regress = n.value != o.value //nolint:nofloateq // work counters are exact integers; any drift is the finding
		} else if o.value == 0 {
			regress = n.value > 0
		} else {
			regress = n.value > o.value*limit
		}
		if regress || n.value != o.value { //nolint:nofloateq // exact equality is the "nothing changed" fast path; tolerance already applied above
			lines = append(lines, diffLine{name, o.value, n.value, limit, o.class, regress})
		}
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].regress != lines[j].regress {
			return lines[i].regress
		}
		return lines[i].name < lines[j].name
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return lines, onlyOld, onlyNew
}

func usageError(err error) {
	fmt.Fprintf(os.Stderr, "rwc-perfdiff: %v\n", err)
	os.Exit(2)
}

func main() {
	nsTol := flag.Float64("ns-tol", 1.5, "allowed growth ratio for ns/op (wall time is noisy)")
	bytesTol := flag.Float64("bytes-tol", 1.5, "allowed growth ratio for B/op")
	allocsTol := flag.Float64("allocs-tol", 1.2, "allowed growth ratio for allocs/op (near-deterministic)")
	ratioTol := flag.Float64("ratio-tol", 2.0, "allowed growth ratio for bounded fractions (load-report drop/error rates)")
	oldSHA := flag.String("old-sha", "", "select this SHA's entry from an OLD bench history (prefix match; default: last line)")
	newSHA := flag.String("new-sha", "", "select this SHA's entry from a NEW bench history (prefix match; default: last line)")
	quiet := flag.Bool("quiet", false, "print regressions only, not improvements or one-sided metrics")
	flag.Parse()

	if flag.NArg() != 2 {
		usageError(fmt.Errorf("want exactly two arguments OLD NEW, got %d", flag.NArg()))
	}
	if *nsTol < 1 || *bytesTol < 1 || *allocsTol < 1 || *ratioTol < 1 {
		usageError(fmt.Errorf("tolerances are growth ratios and must be >= 1"))
	}
	oldKind, oldM, err := loadRecord(flag.Arg(0), *oldSHA)
	if err != nil {
		usageError(err)
	}
	newKind, newM, err := loadRecord(flag.Arg(1), *newSHA)
	if err != nil {
		usageError(err)
	}
	// bench and history normalize to the same metric space; perf and
	// load artifacts each live in their own and only compare to
	// themselves.
	distinct := func(k string) bool { return k == "perf" || k == "load" }
	if oldKind != newKind && (distinct(oldKind) || distinct(newKind)) {
		usageError(fmt.Errorf("cannot compare %s record %s against %s record %s",
			oldKind, flag.Arg(0), newKind, flag.Arg(1)))
	}

	lines, onlyOld, onlyNew := compare(oldM, newM, tolerances{*nsTol, *bytesTol, *allocsTol, *ratioTol})
	regressions := 0
	for _, l := range lines {
		switch {
		case l.regress && l.class == classWork:
			fmt.Printf("REGRESS %-12s %s: %v -> %v (deterministic counter drifted)\n",
				l.class, l.name, l.old, l.new)
			regressions++
		case l.regress:
			fmt.Printf("REGRESS %-12s %s: %v -> %v (%.2fx > %.2fx allowed)\n",
				l.class, l.name, l.old, l.new, l.new/l.old, l.limit)
			regressions++
		case *quiet:
		case l.class == classInfo:
			fmt.Printf("info    %-12s %s: %v -> %v\n", l.class, l.name, l.old, l.new)
		default:
			fmt.Printf("ok      %-12s %s: %v -> %v\n", l.class, l.name, l.old, l.new)
		}
	}
	if !*quiet {
		for _, name := range onlyOld {
			fmt.Printf("only-old        %s\n", name)
		}
		for _, name := range onlyNew {
			fmt.Printf("only-new        %s\n", name)
		}
	}
	fmt.Printf("rwc-perfdiff: %d metric(s) compared, %d regression(s)\n",
		len(oldM), regressions)
	if regressions > 0 {
		os.Exit(1)
	}
}
