package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/load"
	"repro/internal/obs/perf"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const historyTwoEntries = `{"sha":"aaa1111","date":"2026-08-01","benchmarks":{"BenchmarkX":{"iterations":10,"ns_per_op":100,"allocs_per_op":4}}}
{"sha":"bbb2222","date":"2026-08-02","benchmarks":{"BenchmarkX":{"iterations":10,"ns_per_op":120,"allocs_per_op":4}}}
`

func TestLoadRecordHistorySelectsBySHAPrefix(t *testing.T) {
	path := writeFile(t, "hist.jsonl", historyTwoEntries)
	kind, m, err := loadRecord(path, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "history" {
		t.Fatalf("kind = %q, want history", kind)
	}
	if got := m["BenchmarkX ns/op"].value; got != 100 {
		t.Fatalf("sha aaa ns/op = %v, want 100", got)
	}
	// Empty SHA selects the last entry.
	_, m, err = loadRecord(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkX ns/op"].value; got != 120 {
		t.Fatalf("last-entry ns/op = %v, want 120", got)
	}
	if _, _, err := loadRecord(path, "zzz"); err == nil {
		t.Fatal("unknown SHA should fail")
	}
}

func TestLoadRecordBenchDocument(t *testing.T) {
	path := writeFile(t, "bench.json", `{
  "BenchmarkY": {"iterations": 5, "ns_per_op": 10, "bytes_per_op": 64, "allocs_per_op": 2, "metrics": {"satisfied": 0.97}}
}`)
	kind, m, err := loadRecord(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "bench" {
		t.Fatalf("kind = %q, want bench", kind)
	}
	for name, want := range map[string]struct {
		v float64
		c class
	}{
		"BenchmarkY ns/op":     {10, classNs},
		"BenchmarkY B/op":      {64, classBytes},
		"BenchmarkY allocs/op": {2, classAllocs},
		"BenchmarkY satisfied": {0.97, classInfo},
	} {
		got, ok := m[name]
		if !ok || got.value != want.v || got.class != want.c {
			t.Fatalf("%s = %+v ok=%v, want value %v class %v", name, got, ok, want.v, want.c)
		}
	}
	// A bench document cannot answer a SHA query.
	if _, _, err := loadRecord(path, "abc"); err == nil {
		t.Fatal("SHA selection against a bench document should fail")
	}
}

func TestLoadRecordPerfArtifact(t *testing.T) {
	rec := perf.New("test")
	rec.Observe("solve", 1000)
	rec.Observe("solve", 3000)
	path := filepath.Join(t.TempDir(), "perf.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = rec.WriteJSON(f, map[string]float64{"rwc_work_dijkstra_pops_total": 42})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	kind, m, err := loadRecord(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "perf" {
		t.Fatalf("kind = %q, want perf", kind)
	}
	if got := m["rwc_work_dijkstra_pops_total"]; got.value != 42 || got.class != classWork {
		t.Fatalf("work counter = %+v, want 42/classWork", got)
	}
	// Phase wall time is informational: mean of the two observations.
	if got := m["solve mean_ns"]; got.value != 2000 || got.class != classInfo {
		t.Fatalf("phase mean = %+v, want 2000/classInfo", got)
	}
}

func TestCompareToleranceBands(t *testing.T) {
	tol := tolerances{ns: 1.5, bytes: 1.5, allocs: 1.2}
	oldM := map[string]metric{
		"a ns/op":       {100, classNs},
		"b ns/op":       {100, classNs},
		"c allocs/op":   {10, classAllocs},
		"work_total":    {500, classWork},
		"info headline": {0.9, classInfo},
		"gone ns/op":    {5, classNs},
	}
	newM := map[string]metric{
		"a ns/op":       {149, classNs},    // within 1.5x: ok
		"b ns/op":       {151, classNs},    // past 1.5x: regression
		"c allocs/op":   {11, classAllocs}, // within 1.2x: ok
		"work_total":    {501, classWork},  // any drift: regression
		"info headline": {0.5, classInfo},  // info never gates
		"added B/op":    {7, classBytes},
	}
	lines, onlyOld, onlyNew := compare(oldM, newM, tol)
	regressed := map[string]bool{}
	for _, l := range lines {
		if l.regress {
			regressed[l.name] = true
		}
	}
	if len(regressed) != 2 || !regressed["b ns/op"] || !regressed["work_total"] {
		t.Fatalf("regressions = %v, want exactly {b ns/op, work_total}", regressed)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "gone ns/op" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "added B/op" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestCompareWorkCounterShrinkIsAlsoDrift(t *testing.T) {
	// Deterministic counters gate in both directions: less work than
	// the baseline means the solver changed behavior, which the gate
	// must surface even though it "improved".
	oldM := map[string]metric{"rwc_work_x": {100, classWork}}
	newM := map[string]metric{"rwc_work_x": {99, classWork}}
	lines, _, _ := compare(oldM, newM, tolerances{1.5, 1.5, 1.2, 2.0})
	if len(lines) != 1 || !lines[0].regress {
		t.Fatalf("lines = %+v, want one work regression", lines)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldM := map[string]metric{"z ns/op": {0, classNs}}
	newM := map[string]metric{"z ns/op": {1, classNs}}
	lines, _, _ := compare(oldM, newM, tolerances{1.5, 1.5, 1.2, 2.0})
	if len(lines) != 1 || !lines[0].regress {
		t.Fatalf("growth from a zero baseline must regress, got %+v", lines)
	}
}

func TestLoadRecordLoadReport(t *testing.T) {
	rep := load.Report{
		Tool: "rwc-loadgen", Target: "http://x", Seed: 1, DurationNs: 3e9,
		Scrape:  load.ClientStats{Requests: 30, Errors: 3, P50Ns: 1e6, P99Ns: 4e6, MaxNs: 9e6},
		Query:   load.ClientStats{Requests: 10, P99Ns: 2e6},
		Demand:  load.DemandStats{Batches: 20, Demands: 320, Rejected: 40},
		SSE:     load.SSEStats{Events: 90, DroppedSlowConsumer: 10, DropFraction: 0.1, EventsPerSec: 30},
		Service: load.ServiceStats{DecisionsPerSec: 25, RoundsDelta: 12},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := writeFile(t, "load.json", buf.String())
	kind, m, err := loadRecord(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "load" {
		t.Fatalf("kind = %q, want load", kind)
	}
	if got := m["loadgen scrape p99_ns"]; got.value != 4e6 || got.class != classNs {
		t.Fatalf("scrape p99 = %+v, want 4e6/classNs", got)
	}
	if got := m["loadgen sse drop_fraction"]; got.value != 0.1 || got.class != classRatio {
		t.Fatalf("drop fraction = %+v, want 0.1/classRatio", got)
	}
	if got := m["loadgen scrape error_fraction"]; got.value != 0.1 || got.class != classRatio {
		t.Fatalf("error fraction = %+v, want 0.1/classRatio", got)
	}
	// Throughput gates inverted: seconds per decision, so slower = growth.
	if got := m["loadgen service seconds_per_decision"]; got.value != 1.0/25 || got.class != classNs {
		t.Fatalf("seconds_per_decision = %+v, want 0.04/classNs", got)
	}
	if got := m["loadgen demand batches"]; got.class != classInfo {
		t.Fatalf("offered-load volume must stay informational, got %+v", got)
	}
}

func TestCompareRatioBand(t *testing.T) {
	tol := tolerances{1.5, 1.5, 1.2, 2.0}
	oldM := map[string]metric{
		"ok drop_fraction":  {0.10, classRatio},
		"bad drop_fraction": {0.10, classRatio},
		"was-zero fraction": {0, classRatio},
	}
	newM := map[string]metric{
		"ok drop_fraction":  {0.19, classRatio}, // within 2.0x: ok
		"bad drop_fraction": {0.21, classRatio}, // past 2.0x: regression
		"was-zero fraction": {0.01, classRatio}, // any growth from zero: regression
	}
	lines, _, _ := compare(oldM, newM, tol)
	regressed := map[string]bool{}
	for _, l := range lines {
		if l.regress {
			regressed[l.name] = true
		}
	}
	if len(regressed) != 2 || !regressed["bad drop_fraction"] || !regressed["was-zero fraction"] {
		t.Fatalf("ratio regressions = %v, want {bad drop_fraction, was-zero fraction}", regressed)
	}
}

func TestParseHistoryRejectsNonHistory(t *testing.T) {
	if _, ok := parseHistory([]byte(`{"BenchmarkX": {"iterations": 1, "ns_per_op": 2}}`)); ok {
		t.Fatal("a bench document (no benchmarks key) must not parse as history")
	}
	if _, ok := parseHistory([]byte("not json\n")); ok {
		t.Fatal("garbage must not parse as history")
	}
}
