// Command rwc-bvt drives the simulated bandwidth variable transceiver
// through repeated modulation changes — the §3.1 testbed — and prints
// per-change downtimes plus the CDF comparison of the power-cycle and
// laser-on procedures (Figure 6b).
//
// Usage:
//
//	rwc-bvt [-changes N] [-snr dB] [-seed N] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bvt"
	"repro/internal/modulation"
	"repro/internal/stats"
)

func main() {
	changes := flag.Int("changes", 200, "number of modulation changes per method")
	snrdB := flag.Float64("snr", 20, "channel SNR in dB")
	seed := flag.Uint64("seed", 7, "latency draw seed")
	verbose := flag.Bool("verbose", false, "print every change")
	flag.Parse()

	caps := []modulation.Gbps{100, 150, 200}
	cfg := bvt.Config{InitialMode: 100, ChannelSNRdB: *snrdB, Seed: *seed}

	results := map[string][]float64{}
	for _, m := range []bvt.Method{bvt.MethodPowerCycle, bvt.MethodHot} {
		reports, err := bvt.Testbed(cfg, caps, *changes, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwc-bvt: %v\n", err)
			os.Exit(1)
		}
		if *verbose {
			for i, r := range reports {
				fmt.Printf("%s change %3d: %v -> %v downtime %v\n",
					m, i, r.From.Capacity, r.To.Capacity, r.Downtime)
			}
		}
		results[m.String()] = bvt.DowntimesSeconds(reports)
	}

	fmt.Printf("modulation change downtime over %d changes (channel %.1f dB)\n\n", *changes, *snrdB)
	fmt.Printf("%-12s %12s %12s\n", "percentile", "power-cycle", "hot")
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		fmt.Printf("p%-11.0f %10.2fs %10.4fs\n", p*100,
			stats.Quantile(results["power-cycle"], p),
			stats.Quantile(results["hot"], p))
	}
	fmt.Printf("%-12s %10.2fs %10.4fs\n", "mean",
		stats.Mean(results["power-cycle"]), stats.Mean(results["hot"]))
	fmt.Println("\npaper: 68 s average with today's firmware; 35 ms keeping the laser on")
}
