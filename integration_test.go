package repro

// integration_test.go drives the whole system end to end, crossing
// every package boundary a deployment would: synthetic SNR generation →
// telemetry streaming over TCP → the control loop → the graph
// abstraction → an unmodified TE → transceiver reconfiguration; and
// separately the optical provisioning loop (spectrum → topology →
// TE decision → optical commit).

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/bvt"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modulation"
	"repro/internal/qot"
	"repro/internal/snr"
	"repro/internal/spectrum"
	"repro/internal/te"
	"repro/internal/telemetry"

	"repro/rwc"
)

// TestEndToEndTelemetryControlLoop streams generated SNR over a real
// TCP socket into the controller and verifies the closed loop: demand
// growth triggers upgrades; an SNR dip triggers a flap, not an outage.
func TestEndToEndTelemetryControlLoop(t *testing.T) {
	// Physical topology: two links in a line.
	g := rwc.NewGraph()
	s, m, d := g.AddNode("s"), g.AddNode("m"), g.AddNode("d")
	g.AddEdge(rwc.Edge{From: s, To: m, Weight: 1})
	g.AddEdge(rwc.Edge{From: m, To: d, Weight: 1})

	ctrl, err := controller.New(g, 100, controller.Config{UpgradeHoldObservations: 1})
	if err != nil {
		t.Fatal(err)
	}

	srv := telemetry.NewServer([]string{"s-m", "m-d"})
	serveErr := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { serveErr <- srv.Serve(ctx, "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Addr() == nil {
		t.Fatal("server did not start")
	}
	defer func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	client, err := telemetry.Dial(ctx, srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	feed := func(snrs [2]float64) {
		t.Helper()
		for li, v := range snrs {
			// Retry publish until the subscriber is registered.
			for {
				if err := srv.Publish(telemetry.Sample{LinkIndex: li, Time: time.Now(), SNRdB: v}); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		for range snrs {
			if err := client.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
				t.Fatal(err)
			}
			sample, err := client.Next()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ctrl.ObserveSNR(graph.EdgeID(sample.LinkIndex), sample.SNRdB); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: healthy, demand fits.
	feed([2]float64{17, 17})
	plan, err := ctrl.Step([]te.Demand{{Src: s, Dst: d, Volume: 80}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Orders) != 0 || plan.Decision.Value < 79.9 {
		t.Fatalf("round 1: %d orders, shipped %v", len(plan.Orders), plan.Decision.Value)
	}

	// Round 2: demand outgrows static capacity → upgrades via the
	// abstraction.
	feed([2]float64{17, 17})
	plan, err = ctrl.Step([]te.Demand{{Src: s, Dst: d, Volume: 180}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Decision.Value-180) > 1e-6 {
		t.Fatalf("round 2 shipped %v", plan.Decision.Value)
	}
	upgrades := 0
	for _, o := range plan.Orders {
		if o.Kind == controller.OrderUpgrade {
			upgrades++
		}
	}
	if upgrades != 2 {
		t.Fatalf("round 2 upgrades = %d", upgrades)
	}

	// Round 3: SNR collapse on link 0 → flap to 50, not darkness.
	feed([2]float64{4.5, 17})
	plan, err = ctrl.Step([]te.Demand{{Src: s, Dst: d, Volume: 180}})
	if err != nil {
		t.Fatal(err)
	}
	flapped := false
	for _, o := range plan.Orders {
		if o.Kind == controller.OrderForcedDowngrade && o.To == 50 {
			flapped = true
		}
	}
	if !flapped {
		t.Fatalf("round 3: no flap in %+v", plan.Orders)
	}
	if plan.Decision.Value < 49.9 {
		t.Fatalf("round 3: degraded link shipped only %v", plan.Decision.Value)
	}
}

// TestEndToEndOpticalProvisioningToTE drives the optical loop: build a
// fiber plant, provision the wavelengths, export the Algorithm-1 input,
// solve TE, commit upgrades to the lightpaths, and re-check headroom.
func TestEndToEndOpticalProvisioningToTE(t *testing.T) {
	fibers := graph.New()
	a, b, c := fibers.AddNode("A"), fibers.AddNode("B"), fibers.AddNode("C")
	both := func(u, v graph.NodeID, km float64) {
		fibers.AddEdge(graph.Edge{From: u, To: v, Weight: km})
		fibers.AddEdge(graph.Edge{From: v, To: u, Weight: km})
	}
	both(a, b, 320)
	both(b, c, 320)
	both(a, c, 960)

	net, err := spectrum.NewNetwork(fibers, spectrum.Config{Channels: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Provision the IP mesh: one wavelength per ordered pair.
	pairs := [][2]graph.NodeID{{a, b}, {b, a}, {b, c}, {c, b}, {a, c}, {c, a}}
	for _, p := range pairs {
		if _, err := net.Provision(p[0], p[1]); err != nil {
			t.Fatalf("provision %v: %v", p, err)
		}
	}
	top, mapping, err := net.ToTopology(25)
	if err != nil {
		t.Fatal(err)
	}
	aug, err := core.Augment(top, core.PenaltyFromMatrix)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := te.Greedy{}.Allocate(aug.Graph, []te.Demand{
		{Src: a, Dst: c, Volume: 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := aug.Translate(graph.FlowResult{Value: alloc.Throughput, EdgeFlow: alloc.EdgeFlow})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Value < 200 {
		t.Fatalf("shipped %v of 250 — upgrades not exploited", dec.Value)
	}
	if len(dec.Changes) == 0 {
		t.Fatal("no upgrades decided")
	}
	if err := net.ApplyDecision(dec, mapping); err != nil {
		t.Fatal(err)
	}
	// Re-export: committed upgrades shrink the remaining headroom.
	top2, _, err := net.ToTopology(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(top2.Upgrades) >= len(top.Upgrades) {
		t.Fatalf("headroom did not shrink: %d -> %d upgradable links",
			len(top.Upgrades), len(top2.Upgrades))
	}
}

// TestEndToEndBVTExecutesControllerOrders attaches transceivers to the
// controller's links and executes a full scenario through the drivers,
// cross-checking configured capacities against device state.
func TestEndToEndBVTExecutesControllerOrders(t *testing.T) {
	g := rwc.NewGraph()
	s, d := g.AddNode("s"), g.AddNode("d")
	g.AddEdge(rwc.Edge{From: s, To: d, Weight: 1})

	ctrl, err := controller.New(g, 100, controller.Config{UpgradeHoldObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := bvt.New(bvt.Config{InitialMode: 100, ChannelSNRdB: 17, HotCapable: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	drv := bvt.NewDriver(tr, nil)

	// Demand growth → upgrade order → device change.
	if _, err := ctrl.ObserveSNR(0, 17); err != nil {
		t.Fatal(err)
	}
	plan, err := ctrl.Step([]te.Demand{{Src: s, Dst: d, Volume: 200}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range plan.Orders {
		if o.To == 0 {
			continue
		}
		if _, err := drv.ChangeModulation(o.To, bvt.MethodHot); err != nil {
			t.Fatal(err)
		}
	}
	mode, ok := tr.Mode()
	if !ok {
		t.Fatal("device mode unknown")
	}
	cap0, err := ctrl.Configured(0)
	if err != nil {
		t.Fatal(err)
	}
	if modulation.Gbps(mode.Capacity) != cap0 {
		t.Fatalf("device at %v, controller believes %v", mode.Capacity, cap0)
	}
	if !tr.LinkUp() {
		t.Fatal("device down after executing the plan")
	}
}

// TestQoTGroundsTheFleet cross-checks the two SNR sources: the QoT
// budget for a typical long-haul length should land inside the
// calibrated fleet prior's ±2σ band, tying the synthetic dataset to
// physics.
func TestQoTGroundsTheFleet(t *testing.T) {
	prior := snr.DefaultFiberParams()
	q := qot.Default()
	// Typical long-haul lengths (the fleet prior is calibrated to the
	// paper's continental backbone, dominated by 1000+ km routes).
	for _, km := range []float64{1000, 1600, 2400} {
		v, err := q.SNRdB(km)
		if err != nil {
			t.Fatal(err)
		}
		lo := prior.BaselineMeandB - 2*prior.BaselineStddB
		hi := prior.BaselineMeandB + 2*prior.BaselineStddB
		if v < lo || v > hi {
			t.Fatalf("QoT(%v km) = %v dB outside fleet prior band [%v, %v]", km, v, lo, hi)
		}
	}
}
